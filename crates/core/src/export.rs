//! Machine-readable exporters: per-interval JSONL timelines and
//! Chrome-trace (Perfetto-loadable) files.
//!
//! Two complementary views of a run:
//!
//! * [`timeline_jsonl`] renders the [`Recording`](crate::Recording)
//!   wrapper's per-interval [`TimelineEntry`] buffer as JSON Lines —
//!   one self-contained object per interval, the natural input for
//!   plotting IPC against the policy's cluster decisions.
//! * [`chrome_trace`] renders a [`MetricsObserver`]'s event log in
//!   the Chrome trace-event format: every active-cluster configuration
//!   is a duration (`"ph": "X"`) event, every reconfiguration an
//!   instant (`"ph": "i"`) event, and every decentralized flush stall a
//!   duration event on its own track. Policy decision telemetry adds
//!   counter (`"ph": "C"`) tracks — active clusters, interval IPC, and
//!   instability over time. Load the file in `chrome://tracing` or
//!   <https://ui.perfetto.dev> to see the communication-parallelism
//!   trade-off play out over time.
//! * [`decisions_jsonl`] renders a run's [`DecisionRecord`] stream as
//!   JSON Lines — the schema `clustered explain --decisions` and the
//!   experiment binaries' `--decisions` flags write (documented in
//!   EXPERIMENTS.md).
//!
//! Trace timestamps are **simulated cycles** presented as the format's
//! microseconds: one trace "µs" is one cycle.

use crate::recording::TimelineEntry;
use clustered_sim::{DecisionRecord, HostProfiler, HostStage, MetricsObserver};
use clustered_stats::Json;

/// Trace thread-id base for the host-profile stage tracks: stage `i`
/// renders on tid `HOST_TID_BASE + i`, clear of the guest tracks
/// (0 = configurations, 1 = flushes).
pub const HOST_TID_BASE: u64 = 100;

/// Renders a recorded timeline as JSON Lines: one object per interval
/// with `committed`, `instructions`, `cycles`, `ipc`, `branches`,
/// `memrefs`, and `clusters` keys. Returns the empty string for an
/// empty timeline.
pub fn timeline_jsonl(timeline: &[TimelineEntry]) -> String {
    let mut out = String::new();
    for e in timeline {
        let line = Json::object()
            .set("committed", e.committed)
            .set("instructions", e.record.instructions)
            .set("cycles", e.record.cycles)
            .set("ipc", e.record.ipc())
            .set("branches", e.record.branches)
            .set("memrefs", e.record.memrefs)
            .set("clusters", e.clusters);
        out.push_str(&line.to_string_compact());
        out.push('\n');
    }
    out
}

/// Renders policy decision records as JSON Lines, one
/// [`DecisionRecord::to_json`] object per line. Returns the empty
/// string for an empty trace.
pub fn decisions_jsonl(decisions: &[DecisionRecord]) -> String {
    let mut out = String::new();
    for d in decisions {
        out.push_str(&d.to_json().to_string_compact());
        out.push('\n');
    }
    out
}

fn duration_event(name: String, ts: u64, dur: u64, tid: u64, args: Json) -> Json {
    Json::object()
        .set("name", name)
        .set("ph", "X")
        .set("ts", ts)
        .set("dur", dur)
        .set("pid", 0u64)
        .set("tid", tid)
        .set("args", args)
}

fn counter_event(name: &str, ts: u64, series: &str, value: f64) -> Json {
    Json::object()
        .set("name", name)
        .set("ph", "C")
        .set("ts", ts)
        .set("pid", 0u64)
        .set("args", Json::object().set(series, value))
}

/// The observer's event log as a Chrome trace-event array.
///
/// Track 0 carries one duration event per active-cluster configuration
/// span and one instant event per reconfiguration; track 1 carries the
/// decentralized model's flush stalls. When the observer collected
/// policy decision records, three counter tracks (`"ph": "C"`) are
/// appended — `active clusters`, `interval IPC`, and `instability`,
/// each sampled at every decision point. The result serializes to a
/// JSON array loadable by `chrome://tracing` and Perfetto.
pub fn chrome_trace(m: &MetricsObserver) -> Json {
    let mut events: Vec<Json> = Vec::new();
    // Configuration spans: from the run's start through each
    // reconfiguration to the final observed cycle.
    let mut span_start = 0u64;
    let mut clusters = m.initial_clusters;
    for r in &m.reconfigs {
        events.push(duration_event(
            format!("{clusters} clusters"),
            span_start,
            r.cycle - span_start,
            0,
            Json::object().set("clusters", clusters),
        ));
        events.push(
            Json::object()
                .set("name", format!("reconfigure {} -> {}", r.from, r.to))
                .set("ph", "i")
                .set("ts", r.cycle)
                .set("pid", 0u64)
                .set("tid", 0u64)
                .set("s", "t")
                .set("args", Json::object().set("from", r.from).set("to", r.to)),
        );
        span_start = r.cycle;
        clusters = r.to;
    }
    if m.last_cycle > span_start || events.is_empty() {
        events.push(duration_event(
            format!("{clusters} clusters"),
            span_start,
            m.last_cycle.saturating_sub(span_start),
            0,
            Json::object().set("clusters", clusters),
        ));
    }
    for f in &m.flushes {
        events.push(duration_event(
            "reconfiguration flush".to_string(),
            f.cycle,
            f.stall_cycles,
            1,
            Json::object().set("stall_cycles", f.stall_cycles).set("writebacks", f.writebacks),
        ));
    }
    for d in &m.decisions {
        events.push(counter_event("active clusters", d.cycle, "clusters", d.clusters as f64));
        events.push(counter_event("interval IPC", d.cycle, "ipc", d.ipc));
        events.push(counter_event("instability", d.cycle, "instability", d.instability));
    }
    Json::Arr(events)
}

fn metadata_event(name: &str, tid: u64, value: &str) -> Json {
    Json::object()
        .set("name", name)
        .set("ph", "M")
        .set("ts", 0u64)
        .set("pid", 0u64)
        .set("tid", tid)
        .set("args", Json::object().set("name", value))
}

/// Appends the host-profile events for `p` to `events`: per-slice
/// `"ph": "X"` spans on one track per stage, `"ph": "C"` queue-depth
/// counters, and `"ph": "M"` metadata naming the process after `label`
/// (an arbitrary workload string — the serializer escapes it).
fn push_host_events(events: &mut Vec<Json>, p: &HostProfiler, label: &str) {
    events.push(metadata_event("process_name", 0, &format!("clustered host profile: {label}")));
    for (i, stage) in HostStage::ALL.iter().enumerate() {
        events.push(metadata_event(
            "thread_name",
            HOST_TID_BASE + i as u64,
            &format!("host {}", stage.as_str()),
        ));
    }
    for s in p.slices() {
        for (i, stage) in HostStage::ALL.iter().enumerate() {
            events.push(duration_event(
                format!("host {}", stage.as_str()),
                s.start_cycle,
                s.end_cycle - s.start_cycle,
                HOST_TID_BASE + i as u64,
                Json::object().set("nanos", s.stage_nanos[i]),
            ));
        }
        events.push(counter_event(
            "host calendar events",
            s.end_cycle,
            "events",
            s.calendar_events as f64,
        ));
        events.push(counter_event(
            "host overflow events",
            s.end_cycle,
            "events",
            s.overflow_events as f64,
        ));
        events.push(counter_event(
            "host busy clusters",
            s.end_cycle,
            "clusters",
            f64::from(s.busy_clusters),
        ));
    }
}

/// A [`HostProfiler`]'s timeline as a standalone Chrome trace-event
/// array: one `"ph": "X"` span per stage per slice (tracks
/// [`HOST_TID_BASE`]+stage), `"ph": "C"` counter tracks for
/// calendar/overflow queue depth and busy clusters, and metadata
/// events naming the tracks. Timestamps are simulated cycles, as in
/// [`chrome_trace`].
pub fn host_chrome_trace(p: &HostProfiler, label: &str) -> Json {
    let mut events = Vec::new();
    push_host_events(&mut events, p, label);
    Json::Arr(events)
}

/// [`chrome_trace`] plus the host-profile tracks of
/// [`host_chrome_trace`] in one document: guest configuration spans,
/// reconfigurations, flushes, and decision counters interleaved with
/// host stage-time spans and queue-depth counters on their own tracks.
pub fn chrome_trace_with_host(m: &MetricsObserver, p: &HostProfiler, label: &str) -> Json {
    let Json::Arr(mut events) = chrome_trace(m) else {
        unreachable!("chrome_trace returns an array");
    };
    push_host_events(&mut events, p, label);
    Json::Arr(events)
}

/// One `host_profile` JSON document: run metadata and throughput
/// (sim-cycles/sec) wrapped around [`HostProfiler::to_json`]'s stage
/// shares, queue histograms, and skew summary. The schema is
/// documented in EXPERIMENTS.md.
pub fn host_profile_json(p: &HostProfiler, label: &str, wall_seconds: f64) -> Json {
    let cycles = p.cycles();
    let per_sec =
        if wall_seconds > 0.0 { cycles as f64 / wall_seconds } else { 0.0 };
    Json::object()
        .set("workload", label)
        .set("wall_seconds", wall_seconds)
        .set("sim_cycles", cycles)
        .set("sim_cycles_per_sec", per_sec)
        .set("profile", p.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::IntervalRecord;
    use clustered_sim::SimObserver;
    use clustered_stats::json;

    #[test]
    fn jsonl_renders_one_parseable_line_per_interval() {
        let timeline = vec![
            TimelineEntry {
                committed: 1_000,
                record: IntervalRecord {
                    instructions: 1_000,
                    cycles: 500,
                    branches: 100,
                    memrefs: 300,
                },
                clusters: 16,
            },
            TimelineEntry {
                committed: 2_000,
                record: IntervalRecord {
                    instructions: 1_000,
                    cycles: 250,
                    branches: 90,
                    memrefs: 310,
                },
                clusters: 4,
            },
        ];
        let text = timeline_jsonl(&timeline);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = json::parse(lines[0]).expect("valid JSON line");
        assert_eq!(first.get("committed").and_then(Json::as_f64), Some(1_000.0));
        assert_eq!(first.get("ipc").and_then(Json::as_f64), Some(2.0));
        assert_eq!(first.get("clusters").and_then(Json::as_f64), Some(16.0));
        let second = json::parse(lines[1]).expect("valid JSON line");
        assert_eq!(second.get("ipc").and_then(Json::as_f64), Some(4.0));
        assert!(timeline_jsonl(&[]).is_empty());
    }

    /// Drives a [`MetricsObserver`] by hand: 16 clusters to cycle 100,
    /// then 4 clusters (with a flush) to cycle 250.
    fn observed_run() -> MetricsObserver {
        let mut m = MetricsObserver::new(50);
        m.on_cycle(1, 16, 0);
        m.on_flush_stall(100, 12, 30);
        m.on_reconfig(100, 16, 4);
        m.on_cycle(250, 4, 0);
        m
    }

    #[test]
    fn chrome_trace_has_spans_instants_and_flushes() {
        let trace = chrome_trace(&observed_run());
        let events = trace.as_arr().expect("trace is an array");
        // 2 configuration spans + 1 instant + 1 flush.
        assert_eq!(events.len(), 4);
        for e in events {
            assert!(e.get("ph").is_some() && e.get("ts").is_some() && e.get("name").is_some());
        }
        assert_eq!(events[0].get("name").and_then(Json::as_str), Some("16 clusters"));
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(events[0].get("dur").and_then(Json::as_f64), Some(100.0));
        assert_eq!(events[1].get("name").and_then(Json::as_str), Some("reconfigure 16 -> 4"));
        assert_eq!(events[1].get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(events[2].get("name").and_then(Json::as_str), Some("4 clusters"));
        assert_eq!(events[2].get("ts").and_then(Json::as_f64), Some(100.0));
        assert_eq!(events[2].get("dur").and_then(Json::as_f64), Some(150.0));
        assert_eq!(events[3].get("name").and_then(Json::as_str), Some("reconfiguration flush"));
        assert_eq!(events[3].get("tid").and_then(Json::as_f64), Some(1.0));
        // The whole document must survive a serialize → parse trip.
        let reparsed = json::parse(&trace.to_string_pretty()).expect("valid trace JSON");
        assert_eq!(reparsed, trace);
    }

    #[test]
    fn chrome_trace_decision_counters_use_counter_phase_only() {
        use clustered_sim::{DecisionReason, DecisionRecord, PolicyState};
        let mut m = observed_run();
        m.on_decision(&DecisionRecord {
            interval: 1,
            commit: 10_000,
            start_cycle: 1,
            cycle: 200,
            state: PolicyState::Exploring,
            ipc: 0.75,
            branch_delta: 0,
            memref_delta: 0,
            instability: 2.0,
            explored_ipc: vec![0.75],
            interval_length: 10_000,
            clusters: 4,
            reason: DecisionReason::Exploring,
        });
        let trace = chrome_trace(&m);
        let events = trace.as_arr().expect("trace is an array");
        // The decision adds exactly three counter samples; the span /
        // instant / flush population is untouched.
        let counters: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .collect();
        assert_eq!(events.len(), 7);
        assert_eq!(counters.len(), 3);
        let names: Vec<&str> =
            counters.iter().filter_map(|e| e.get("name").and_then(Json::as_str)).collect();
        assert_eq!(names, vec!["active clusters", "interval IPC", "instability"]);
        for c in &counters {
            assert_eq!(c.get("ts").and_then(Json::as_f64), Some(200.0));
        }
        assert_eq!(
            counters[0].get("args").and_then(|a| a.get("clusters")).and_then(Json::as_f64),
            Some(4.0)
        );
        assert_eq!(
            counters[2].get("args").and_then(|a| a.get("instability")).and_then(Json::as_f64),
            Some(2.0)
        );
    }

    #[test]
    fn chrome_trace_round_trips_and_every_event_has_required_keys() {
        use clustered_sim::{DecisionReason, DecisionRecord, PolicyState};
        let mut m = observed_run();
        for i in 1..=3u64 {
            m.on_decision(&DecisionRecord {
                interval: i,
                commit: i * 1_000,
                start_cycle: (i - 1) * 50,
                cycle: i * 50,
                state: PolicyState::Stable,
                ipc: 0.5,
                branch_delta: -3,
                memref_delta: 2,
                instability: 0.0,
                explored_ipc: Vec::new(),
                interval_length: 1_000,
                clusters: 8,
                reason: DecisionReason::StableNoChange,
            });
        }
        let trace = chrome_trace(&m);
        // Round-trip through the clustered_stats parser.
        let reparsed = json::parse(&trace.to_string_compact()).expect("valid trace JSON");
        assert_eq!(reparsed, trace);
        let events = reparsed.as_arr().expect("trace is an array");
        assert!(events.len() >= 4 + 9, "spans+instant+flush plus 3 counters per decision");
        for e in events {
            for key in ["name", "ph", "ts", "pid"] {
                assert!(e.get(key).is_some(), "event missing {key}: {e:?}");
            }
        }
    }

    #[test]
    fn decisions_jsonl_renders_one_parseable_line_per_record() {
        use clustered_sim::{DecisionReason, DecisionRecord, PolicyState};
        let records = vec![
            DecisionRecord {
                interval: 1,
                commit: 10_000,
                start_cycle: 0,
                cycle: 20_000,
                state: PolicyState::Exploring,
                ipc: 0.5,
                branch_delta: 0,
                memref_delta: 0,
                instability: 0.0,
                explored_ipc: vec![0.5],
                interval_length: 10_000,
                clusters: 4,
                reason: DecisionReason::Reference,
            },
            DecisionRecord {
                interval: 2,
                commit: 20_000,
                start_cycle: 20_000,
                cycle: 39_000,
                state: PolicyState::Stable,
                ipc: 0.52,
                branch_delta: -5,
                memref_delta: 1,
                instability: 0.0,
                explored_ipc: Vec::new(),
                interval_length: 10_000,
                clusters: 8,
                reason: DecisionReason::ExplorationComplete,
            },
        ];
        let text = decisions_jsonl(&records);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = json::parse(lines[0]).expect("valid JSON line");
        assert_eq!(first.get("reason").and_then(Json::as_str), Some("reference"));
        assert_eq!(first.get("state").and_then(Json::as_str), Some("exploring"));
        let second = json::parse(lines[1]).expect("valid JSON line");
        assert_eq!(second.get("branch_delta").and_then(Json::as_f64), Some(-5.0));
        assert_eq!(second.get("clusters").and_then(Json::as_u64), Some(8));
        assert!(decisions_jsonl(&[]).is_empty());
    }

    /// Drives a [`HostProfiler`] by hand through two 10-cycle slices.
    fn profiled_host() -> HostProfiler {
        use clustered_sim::QueueHealth;
        let mut p = HostProfiler::new(10);
        for cycle in 1..=20u64 {
            p.on_stage_nanos(&[40, 30, 20, 5, 4, 1]);
            p.on_event_drained((cycle % 2) as usize);
            p.on_queue_health(&QueueHealth {
                cycle,
                calendar_events: 5,
                overflow_events: 1,
                floor: cycle,
                queued_mask: 0b111,
                active_clusters: 4,
                configured_clusters: 16,
                intra_threads: 0,
            });
        }
        p
    }

    /// Golden round-trip for the combined trace: host `ph:"X"` stage
    /// spans and `ph:"C"` queue-depth counters mixed with the existing
    /// guest spans/instants/counters, with a workload label that needs
    /// JSON string escaping.
    #[test]
    fn combined_host_and_guest_trace_round_trips() {
        use clustered_sim::{DecisionReason, DecisionRecord, PolicyState};
        let mut m = observed_run();
        m.on_decision(&DecisionRecord {
            interval: 1,
            commit: 10_000,
            start_cycle: 1,
            cycle: 200,
            state: PolicyState::Stable,
            ipc: 0.5,
            branch_delta: 0,
            memref_delta: 0,
            instability: 0.0,
            explored_ipc: Vec::new(),
            interval_length: 10_000,
            clusters: 8,
            reason: DecisionReason::StableNoChange,
        });
        let label = "gzip \"ref\"\\input\n(tab\there)";
        let trace = chrome_trace_with_host(&m, &profiled_host(), label);

        // The serialized document survives a parse round trip even with
        // quotes, backslashes, and control characters in the label.
        let text = trace.to_string_compact();
        let reparsed = json::parse(&text).expect("valid trace JSON");
        assert_eq!(reparsed, trace);
        let events = reparsed.as_arr().expect("trace is an array");

        // Guest population (4 span/instant/flush + 3 counters) is
        // untouched; host adds 7 metadata + 2 slices × (6 spans + 3
        // counters).
        assert_eq!(events.len(), 7 + 7 + 2 * 9);
        let host_spans: Vec<&Json> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Json::as_str) == Some("X")
                    && e.get("tid").and_then(Json::as_u64).is_some_and(|t| t >= HOST_TID_BASE)
            })
            .collect();
        assert_eq!(host_spans.len(), 12, "6 stage spans per slice");
        assert_eq!(
            host_spans[0].get("name").and_then(Json::as_str),
            Some("host event_drain")
        );
        assert_eq!(host_spans[0].get("ts").and_then(Json::as_u64), Some(0));
        assert_eq!(host_spans[0].get("dur").and_then(Json::as_u64), Some(10));
        assert_eq!(
            host_spans[0].get("args").and_then(|a| a.get("nanos")).and_then(Json::as_u64),
            Some(400),
            "10 cycles × 40 ns of event drain"
        );

        // Queue-depth counters land on their own ph:"C" tracks at the
        // slice ends, alongside (not replacing) the guest counters.
        let counter_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        for name in
            ["active clusters", "host calendar events", "host overflow events", "host busy clusters"]
        {
            assert!(counter_names.contains(&name), "missing counter track {name}");
        }

        // The escaped label reappears intact after the round trip.
        let process = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .expect("process_name metadata");
        assert_eq!(
            process.get("args").and_then(|a| a.get("name")).and_then(Json::as_str),
            Some(format!("clustered host profile: {label}").as_str())
        );
    }

    #[test]
    fn standalone_host_trace_has_only_host_events() {
        let trace = host_chrome_trace(&profiled_host(), "plain");
        let events = trace.as_arr().expect("array");
        assert_eq!(events.len(), 7 + 2 * 9);
        for e in events {
            let tid = e.get("tid").and_then(Json::as_u64);
            let ph = e.get("ph").and_then(Json::as_str);
            assert!(
                ph == Some("C") || tid.is_some_and(|t| t >= HOST_TID_BASE) || tid == Some(0),
                "unexpected event {e:?}"
            );
        }
        let reparsed = json::parse(&trace.to_string_pretty()).expect("valid trace JSON");
        assert_eq!(reparsed, trace);
    }

    #[test]
    fn host_profile_json_reports_throughput_and_shares() {
        let p = profiled_host();
        let doc = host_profile_json(&p, "gzip", 0.5);
        assert_eq!(doc.get("workload").and_then(Json::as_str), Some("gzip"));
        assert_eq!(doc.get("sim_cycles").and_then(Json::as_u64), Some(20));
        assert_eq!(doc.get("sim_cycles_per_sec").and_then(Json::as_f64), Some(40.0));
        let stages = doc.get("profile").and_then(|p| p.get("stages")).expect("stage table");
        let share_sum: f64 = stages
            .keys()
            .expect("object")
            .iter()
            .filter_map(|k| stages.get(k).and_then(|s| s.get("share")).and_then(Json::as_f64))
            .sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "stage shares sum to 1, got {share_sum}");
        // Degenerate wall time must not divide by zero.
        assert_eq!(
            host_profile_json(&p, "gzip", 0.0)
                .get("sim_cycles_per_sec")
                .and_then(Json::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn chrome_trace_of_steady_run_is_one_span() {
        let mut m = MetricsObserver::new(50);
        m.on_cycle(1, 8, 0);
        m.on_cycle(400, 8, 0);
        let trace = chrome_trace(&m);
        let events = trace.as_arr().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("name").and_then(Json::as_str), Some("8 clusters"));
        assert_eq!(events[0].get("dur").and_then(Json::as_f64), Some(400.0));
    }
}
