//! Machine-readable exporters: per-interval JSONL timelines and
//! Chrome-trace (Perfetto-loadable) files.
//!
//! Two complementary views of a run:
//!
//! * [`timeline_jsonl`] renders the [`Recording`](crate::Recording)
//!   wrapper's per-interval [`TimelineEntry`] buffer as JSON Lines —
//!   one self-contained object per interval, the natural input for
//!   plotting IPC against the policy's cluster decisions.
//! * [`chrome_trace`] renders a [`MetricsObserver`]'s event log in
//!   the Chrome trace-event format: every active-cluster configuration
//!   is a duration (`"ph": "X"`) event, every reconfiguration an
//!   instant (`"ph": "i"`) event, and every decentralized flush stall a
//!   duration event on its own track. Policy decision telemetry adds
//!   counter (`"ph": "C"`) tracks — active clusters, interval IPC, and
//!   instability over time. Load the file in `chrome://tracing` or
//!   <https://ui.perfetto.dev> to see the communication-parallelism
//!   trade-off play out over time.
//! * [`decisions_jsonl`] renders a run's [`DecisionRecord`] stream as
//!   JSON Lines — the schema `clustered explain --decisions` and the
//!   experiment binaries' `--decisions` flags write (documented in
//!   EXPERIMENTS.md).
//!
//! Trace timestamps are **simulated cycles** presented as the format's
//! microseconds: one trace "µs" is one cycle.

use crate::recording::TimelineEntry;
use clustered_sim::{DecisionRecord, MetricsObserver};
use clustered_stats::Json;

/// Renders a recorded timeline as JSON Lines: one object per interval
/// with `committed`, `instructions`, `cycles`, `ipc`, `branches`,
/// `memrefs`, and `clusters` keys. Returns the empty string for an
/// empty timeline.
pub fn timeline_jsonl(timeline: &[TimelineEntry]) -> String {
    let mut out = String::new();
    for e in timeline {
        let line = Json::object()
            .set("committed", e.committed)
            .set("instructions", e.record.instructions)
            .set("cycles", e.record.cycles)
            .set("ipc", e.record.ipc())
            .set("branches", e.record.branches)
            .set("memrefs", e.record.memrefs)
            .set("clusters", e.clusters);
        out.push_str(&line.to_string_compact());
        out.push('\n');
    }
    out
}

/// Renders policy decision records as JSON Lines, one
/// [`DecisionRecord::to_json`] object per line. Returns the empty
/// string for an empty trace.
pub fn decisions_jsonl(decisions: &[DecisionRecord]) -> String {
    let mut out = String::new();
    for d in decisions {
        out.push_str(&d.to_json().to_string_compact());
        out.push('\n');
    }
    out
}

fn duration_event(name: String, ts: u64, dur: u64, tid: u64, args: Json) -> Json {
    Json::object()
        .set("name", name)
        .set("ph", "X")
        .set("ts", ts)
        .set("dur", dur)
        .set("pid", 0u64)
        .set("tid", tid)
        .set("args", args)
}

fn counter_event(name: &str, ts: u64, series: &str, value: f64) -> Json {
    Json::object()
        .set("name", name)
        .set("ph", "C")
        .set("ts", ts)
        .set("pid", 0u64)
        .set("args", Json::object().set(series, value))
}

/// The observer's event log as a Chrome trace-event array.
///
/// Track 0 carries one duration event per active-cluster configuration
/// span and one instant event per reconfiguration; track 1 carries the
/// decentralized model's flush stalls. When the observer collected
/// policy decision records, three counter tracks (`"ph": "C"`) are
/// appended — `active clusters`, `interval IPC`, and `instability`,
/// each sampled at every decision point. The result serializes to a
/// JSON array loadable by `chrome://tracing` and Perfetto.
pub fn chrome_trace(m: &MetricsObserver) -> Json {
    let mut events: Vec<Json> = Vec::new();
    // Configuration spans: from the run's start through each
    // reconfiguration to the final observed cycle.
    let mut span_start = 0u64;
    let mut clusters = m.initial_clusters;
    for r in &m.reconfigs {
        events.push(duration_event(
            format!("{clusters} clusters"),
            span_start,
            r.cycle - span_start,
            0,
            Json::object().set("clusters", clusters),
        ));
        events.push(
            Json::object()
                .set("name", format!("reconfigure {} -> {}", r.from, r.to))
                .set("ph", "i")
                .set("ts", r.cycle)
                .set("pid", 0u64)
                .set("tid", 0u64)
                .set("s", "t")
                .set("args", Json::object().set("from", r.from).set("to", r.to)),
        );
        span_start = r.cycle;
        clusters = r.to;
    }
    if m.last_cycle > span_start || events.is_empty() {
        events.push(duration_event(
            format!("{clusters} clusters"),
            span_start,
            m.last_cycle.saturating_sub(span_start),
            0,
            Json::object().set("clusters", clusters),
        ));
    }
    for f in &m.flushes {
        events.push(duration_event(
            "reconfiguration flush".to_string(),
            f.cycle,
            f.stall_cycles,
            1,
            Json::object().set("stall_cycles", f.stall_cycles).set("writebacks", f.writebacks),
        ));
    }
    for d in &m.decisions {
        events.push(counter_event("active clusters", d.cycle, "clusters", d.clusters as f64));
        events.push(counter_event("interval IPC", d.cycle, "ipc", d.ipc));
        events.push(counter_event("instability", d.cycle, "instability", d.instability));
    }
    Json::Arr(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::IntervalRecord;
    use clustered_sim::SimObserver;
    use clustered_stats::json;

    #[test]
    fn jsonl_renders_one_parseable_line_per_interval() {
        let timeline = vec![
            TimelineEntry {
                committed: 1_000,
                record: IntervalRecord {
                    instructions: 1_000,
                    cycles: 500,
                    branches: 100,
                    memrefs: 300,
                },
                clusters: 16,
            },
            TimelineEntry {
                committed: 2_000,
                record: IntervalRecord {
                    instructions: 1_000,
                    cycles: 250,
                    branches: 90,
                    memrefs: 310,
                },
                clusters: 4,
            },
        ];
        let text = timeline_jsonl(&timeline);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = json::parse(lines[0]).expect("valid JSON line");
        assert_eq!(first.get("committed").and_then(Json::as_f64), Some(1_000.0));
        assert_eq!(first.get("ipc").and_then(Json::as_f64), Some(2.0));
        assert_eq!(first.get("clusters").and_then(Json::as_f64), Some(16.0));
        let second = json::parse(lines[1]).expect("valid JSON line");
        assert_eq!(second.get("ipc").and_then(Json::as_f64), Some(4.0));
        assert!(timeline_jsonl(&[]).is_empty());
    }

    /// Drives a [`MetricsObserver`] by hand: 16 clusters to cycle 100,
    /// then 4 clusters (with a flush) to cycle 250.
    fn observed_run() -> MetricsObserver {
        let mut m = MetricsObserver::new(50);
        m.on_cycle(1, 16, 0);
        m.on_flush_stall(100, 12, 30);
        m.on_reconfig(100, 16, 4);
        m.on_cycle(250, 4, 0);
        m
    }

    #[test]
    fn chrome_trace_has_spans_instants_and_flushes() {
        let trace = chrome_trace(&observed_run());
        let events = trace.as_arr().expect("trace is an array");
        // 2 configuration spans + 1 instant + 1 flush.
        assert_eq!(events.len(), 4);
        for e in events {
            assert!(e.get("ph").is_some() && e.get("ts").is_some() && e.get("name").is_some());
        }
        assert_eq!(events[0].get("name").and_then(Json::as_str), Some("16 clusters"));
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(events[0].get("dur").and_then(Json::as_f64), Some(100.0));
        assert_eq!(events[1].get("name").and_then(Json::as_str), Some("reconfigure 16 -> 4"));
        assert_eq!(events[1].get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(events[2].get("name").and_then(Json::as_str), Some("4 clusters"));
        assert_eq!(events[2].get("ts").and_then(Json::as_f64), Some(100.0));
        assert_eq!(events[2].get("dur").and_then(Json::as_f64), Some(150.0));
        assert_eq!(events[3].get("name").and_then(Json::as_str), Some("reconfiguration flush"));
        assert_eq!(events[3].get("tid").and_then(Json::as_f64), Some(1.0));
        // The whole document must survive a serialize → parse trip.
        let reparsed = json::parse(&trace.to_string_pretty()).expect("valid trace JSON");
        assert_eq!(reparsed, trace);
    }

    #[test]
    fn chrome_trace_decision_counters_use_counter_phase_only() {
        use clustered_sim::{DecisionReason, DecisionRecord, PolicyState};
        let mut m = observed_run();
        m.on_decision(&DecisionRecord {
            interval: 1,
            commit: 10_000,
            start_cycle: 1,
            cycle: 200,
            state: PolicyState::Exploring,
            ipc: 0.75,
            branch_delta: 0,
            memref_delta: 0,
            instability: 2.0,
            explored_ipc: vec![0.75],
            interval_length: 10_000,
            clusters: 4,
            reason: DecisionReason::Exploring,
        });
        let trace = chrome_trace(&m);
        let events = trace.as_arr().expect("trace is an array");
        // The decision adds exactly three counter samples; the span /
        // instant / flush population is untouched.
        let counters: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .collect();
        assert_eq!(events.len(), 7);
        assert_eq!(counters.len(), 3);
        let names: Vec<&str> =
            counters.iter().filter_map(|e| e.get("name").and_then(Json::as_str)).collect();
        assert_eq!(names, vec!["active clusters", "interval IPC", "instability"]);
        for c in &counters {
            assert_eq!(c.get("ts").and_then(Json::as_f64), Some(200.0));
        }
        assert_eq!(
            counters[0].get("args").and_then(|a| a.get("clusters")).and_then(Json::as_f64),
            Some(4.0)
        );
        assert_eq!(
            counters[2].get("args").and_then(|a| a.get("instability")).and_then(Json::as_f64),
            Some(2.0)
        );
    }

    #[test]
    fn chrome_trace_round_trips_and_every_event_has_required_keys() {
        use clustered_sim::{DecisionReason, DecisionRecord, PolicyState};
        let mut m = observed_run();
        for i in 1..=3u64 {
            m.on_decision(&DecisionRecord {
                interval: i,
                commit: i * 1_000,
                start_cycle: (i - 1) * 50,
                cycle: i * 50,
                state: PolicyState::Stable,
                ipc: 0.5,
                branch_delta: -3,
                memref_delta: 2,
                instability: 0.0,
                explored_ipc: Vec::new(),
                interval_length: 1_000,
                clusters: 8,
                reason: DecisionReason::StableNoChange,
            });
        }
        let trace = chrome_trace(&m);
        // Round-trip through the clustered_stats parser.
        let reparsed = json::parse(&trace.to_string_compact()).expect("valid trace JSON");
        assert_eq!(reparsed, trace);
        let events = reparsed.as_arr().expect("trace is an array");
        assert!(events.len() >= 4 + 9, "spans+instant+flush plus 3 counters per decision");
        for e in events {
            for key in ["name", "ph", "ts", "pid"] {
                assert!(e.get(key).is_some(), "event missing {key}: {e:?}");
            }
        }
    }

    #[test]
    fn decisions_jsonl_renders_one_parseable_line_per_record() {
        use clustered_sim::{DecisionReason, DecisionRecord, PolicyState};
        let records = vec![
            DecisionRecord {
                interval: 1,
                commit: 10_000,
                start_cycle: 0,
                cycle: 20_000,
                state: PolicyState::Exploring,
                ipc: 0.5,
                branch_delta: 0,
                memref_delta: 0,
                instability: 0.0,
                explored_ipc: vec![0.5],
                interval_length: 10_000,
                clusters: 4,
                reason: DecisionReason::Reference,
            },
            DecisionRecord {
                interval: 2,
                commit: 20_000,
                start_cycle: 20_000,
                cycle: 39_000,
                state: PolicyState::Stable,
                ipc: 0.52,
                branch_delta: -5,
                memref_delta: 1,
                instability: 0.0,
                explored_ipc: Vec::new(),
                interval_length: 10_000,
                clusters: 8,
                reason: DecisionReason::ExplorationComplete,
            },
        ];
        let text = decisions_jsonl(&records);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = json::parse(lines[0]).expect("valid JSON line");
        assert_eq!(first.get("reason").and_then(Json::as_str), Some("reference"));
        assert_eq!(first.get("state").and_then(Json::as_str), Some("exploring"));
        let second = json::parse(lines[1]).expect("valid JSON line");
        assert_eq!(second.get("branch_delta").and_then(Json::as_f64), Some(-5.0));
        assert_eq!(second.get("clusters").and_then(Json::as_u64), Some(8));
        assert!(decisions_jsonl(&[]).is_empty());
    }

    #[test]
    fn chrome_trace_of_steady_run_is_one_span() {
        let mut m = MetricsObserver::new(50);
        m.on_cycle(1, 8, 0);
        m.on_cycle(400, 8, 0);
        let trace = chrome_trace(&m);
        let events = trace.as_arr().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("name").and_then(Json::as_str), Some("8 clusters"));
        assert_eq!(events[0].get("dur").and_then(Json::as_f64), Some(400.0));
    }
}
