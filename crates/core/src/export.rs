//! Machine-readable exporters: per-interval JSONL timelines and
//! Chrome-trace (Perfetto-loadable) files.
//!
//! Two complementary views of a run:
//!
//! * [`timeline_jsonl`] renders the [`Recording`](crate::Recording)
//!   wrapper's per-interval [`TimelineEntry`] buffer as JSON Lines —
//!   one self-contained object per interval, the natural input for
//!   plotting IPC against the policy's cluster decisions.
//! * [`chrome_trace`] renders a
//!   [`MetricsObserver`](clustered_sim::MetricsObserver)'s event log in
//!   the Chrome trace-event format: every active-cluster configuration
//!   is a duration (`"ph": "X"`) event, every reconfiguration an
//!   instant (`"ph": "i"`) event, and every decentralized flush stall a
//!   duration event on its own track. Load the file in
//!   `chrome://tracing` or <https://ui.perfetto.dev> to see the
//!   communication-parallelism trade-off play out over time.
//!
//! Trace timestamps are **simulated cycles** presented as the format's
//! microseconds: one trace "µs" is one cycle.

use crate::recording::TimelineEntry;
use clustered_sim::MetricsObserver;
use clustered_stats::Json;

/// Renders a recorded timeline as JSON Lines: one object per interval
/// with `committed`, `instructions`, `cycles`, `ipc`, `branches`,
/// `memrefs`, and `clusters` keys. Returns the empty string for an
/// empty timeline.
pub fn timeline_jsonl(timeline: &[TimelineEntry]) -> String {
    let mut out = String::new();
    for e in timeline {
        let line = Json::object()
            .set("committed", e.committed)
            .set("instructions", e.record.instructions)
            .set("cycles", e.record.cycles)
            .set("ipc", e.record.ipc())
            .set("branches", e.record.branches)
            .set("memrefs", e.record.memrefs)
            .set("clusters", e.clusters);
        out.push_str(&line.to_string_compact());
        out.push('\n');
    }
    out
}

fn duration_event(name: String, ts: u64, dur: u64, tid: u64, args: Json) -> Json {
    Json::object()
        .set("name", name)
        .set("ph", "X")
        .set("ts", ts)
        .set("dur", dur)
        .set("pid", 0u64)
        .set("tid", tid)
        .set("args", args)
}

/// The observer's event log as a Chrome trace-event array.
///
/// Track 0 carries one duration event per active-cluster configuration
/// span and one instant event per reconfiguration; track 1 carries the
/// decentralized model's flush stalls. The result serializes to a JSON
/// array loadable by `chrome://tracing` and Perfetto.
pub fn chrome_trace(m: &MetricsObserver) -> Json {
    let mut events: Vec<Json> = Vec::new();
    // Configuration spans: from the run's start through each
    // reconfiguration to the final observed cycle.
    let mut span_start = 0u64;
    let mut clusters = m.initial_clusters;
    for r in &m.reconfigs {
        events.push(duration_event(
            format!("{clusters} clusters"),
            span_start,
            r.cycle - span_start,
            0,
            Json::object().set("clusters", clusters),
        ));
        events.push(
            Json::object()
                .set("name", format!("reconfigure {} -> {}", r.from, r.to))
                .set("ph", "i")
                .set("ts", r.cycle)
                .set("pid", 0u64)
                .set("tid", 0u64)
                .set("s", "t")
                .set("args", Json::object().set("from", r.from).set("to", r.to)),
        );
        span_start = r.cycle;
        clusters = r.to;
    }
    if m.last_cycle > span_start || events.is_empty() {
        events.push(duration_event(
            format!("{clusters} clusters"),
            span_start,
            m.last_cycle.saturating_sub(span_start),
            0,
            Json::object().set("clusters", clusters),
        ));
    }
    for f in &m.flushes {
        events.push(duration_event(
            "reconfiguration flush".to_string(),
            f.cycle,
            f.stall_cycles,
            1,
            Json::object().set("stall_cycles", f.stall_cycles).set("writebacks", f.writebacks),
        ));
    }
    Json::Arr(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::IntervalRecord;
    use clustered_sim::SimObserver;
    use clustered_stats::json;

    #[test]
    fn jsonl_renders_one_parseable_line_per_interval() {
        let timeline = vec![
            TimelineEntry {
                committed: 1_000,
                record: IntervalRecord {
                    instructions: 1_000,
                    cycles: 500,
                    branches: 100,
                    memrefs: 300,
                },
                clusters: 16,
            },
            TimelineEntry {
                committed: 2_000,
                record: IntervalRecord {
                    instructions: 1_000,
                    cycles: 250,
                    branches: 90,
                    memrefs: 310,
                },
                clusters: 4,
            },
        ];
        let text = timeline_jsonl(&timeline);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = json::parse(lines[0]).expect("valid JSON line");
        assert_eq!(first.get("committed").and_then(Json::as_f64), Some(1_000.0));
        assert_eq!(first.get("ipc").and_then(Json::as_f64), Some(2.0));
        assert_eq!(first.get("clusters").and_then(Json::as_f64), Some(16.0));
        let second = json::parse(lines[1]).expect("valid JSON line");
        assert_eq!(second.get("ipc").and_then(Json::as_f64), Some(4.0));
        assert!(timeline_jsonl(&[]).is_empty());
    }

    /// Drives a [`MetricsObserver`] by hand: 16 clusters to cycle 100,
    /// then 4 clusters (with a flush) to cycle 250.
    fn observed_run() -> MetricsObserver {
        let mut m = MetricsObserver::new(50);
        m.on_cycle(1, 16, 0);
        m.on_flush_stall(100, 12, 30);
        m.on_reconfig(100, 16, 4);
        m.on_cycle(250, 4, 0);
        m
    }

    #[test]
    fn chrome_trace_has_spans_instants_and_flushes() {
        let trace = chrome_trace(&observed_run());
        let events = trace.as_arr().expect("trace is an array");
        // 2 configuration spans + 1 instant + 1 flush.
        assert_eq!(events.len(), 4);
        for e in events {
            assert!(e.get("ph").is_some() && e.get("ts").is_some() && e.get("name").is_some());
        }
        assert_eq!(events[0].get("name").and_then(Json::as_str), Some("16 clusters"));
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(events[0].get("dur").and_then(Json::as_f64), Some(100.0));
        assert_eq!(events[1].get("name").and_then(Json::as_str), Some("reconfigure 16 -> 4"));
        assert_eq!(events[1].get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(events[2].get("name").and_then(Json::as_str), Some("4 clusters"));
        assert_eq!(events[2].get("ts").and_then(Json::as_f64), Some(100.0));
        assert_eq!(events[2].get("dur").and_then(Json::as_f64), Some(150.0));
        assert_eq!(events[3].get("name").and_then(Json::as_str), Some("reconfiguration flush"));
        assert_eq!(events[3].get("tid").and_then(Json::as_f64), Some(1.0));
        // The whole document must survive a serialize → parse trip.
        let reparsed = json::parse(&trace.to_string_pretty()).expect("valid trace JSON");
        assert_eq!(reparsed, trace);
    }

    #[test]
    fn chrome_trace_of_steady_run_is_one_span() {
        let mut m = MetricsObserver::new(50);
        m.on_cycle(1, 8, 0);
        m.on_cycle(400, 8, 0);
        let trace = chrome_trace(&m);
        let events = trace.as_arr().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("name").and_then(Json::as_str), Some("8 clusters"));
        assert_eq!(events[0].get("dur").and_then(Json::as_f64), Some(400.0));
    }
}
