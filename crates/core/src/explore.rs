//! The interval-based selection algorithm *with exploration* —
//! Figure 4 of the paper.
//!
//! At the start of each program phase the algorithm runs every
//! candidate configuration for one interval, records the IPCs, picks
//! the winner, and stays there until the phase changes. Phase changes
//! are detected from microarchitecture-independent metrics (branch and
//! memory-reference counts per interval) plus, once stable, IPC
//! deviation. The interval length itself adapts: if phases appear to
//! change too often, the interval is repeatedly doubled until behaviour
//! across intervals is consistent, and if that never happens the
//! algorithm turns itself off, pinned at the most popular
//! configuration.

use clustered_sim::{CommitEvent, DecisionReason, DecisionRecord, PolicyState, ReconfigPolicy};

/// Tunables of [`IntervalExplore`], with the paper's values as
/// defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalExploreConfig {
    /// Initial (minimum) interval length in committed instructions.
    pub initial_interval: u64,
    /// Interval length beyond which the algorithm gives up and pins
    /// the most popular configuration (THRESH3; 1 billion in the
    /// paper — scale it down for short simulations).
    pub max_interval: u64,
    /// Candidate cluster counts explored at each phase start.
    pub explore_configs: Vec<usize>,
    /// Relative IPC deviation treated as significant.
    pub ipc_noise: f64,
    /// A branch/memref count change larger than
    /// `interval_length / metric_divisor` is a significant change.
    pub metric_divisor: u64,
    /// Tolerated accumulated IPC variation before it signals a phase
    /// change (THRESH1).
    pub ipc_variation_threshold: f64,
    /// Accumulated instability that triggers doubling the interval
    /// (THRESH2).
    pub instability_threshold: f64,
    /// Committed instructions per macrophase; all state resets at
    /// macrophase boundaries (100 billion in the paper).
    pub macrophase_interval: u64,
}

impl Default for IntervalExploreConfig {
    fn default() -> IntervalExploreConfig {
        IntervalExploreConfig {
            initial_interval: 10_000,
            max_interval: 1_000_000_000,
            explore_configs: vec![2, 4, 8, 16],
            ipc_noise: 0.10,
            metric_divisor: 100,
            ipc_variation_threshold: 5.0,
            instability_threshold: 5.0,
            macrophase_interval: 100_000_000_000,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct IntervalCounters {
    instructions: u64,
    start_cycle: u64,
    branches: u64,
    memrefs: u64,
}

impl IntervalCounters {
    fn ipc(&self, now: u64) -> f64 {
        let cycles = now.saturating_sub(self.start_cycle).max(1);
        self.instructions as f64 / cycles as f64
    }
}

/// The Figure 4 run-time algorithm.
///
/// # Examples
///
/// ```
/// use clustered_core::IntervalExplore;
/// use clustered_sim::ReconfigPolicy;
///
/// let policy = IntervalExplore::default();
/// assert_eq!(policy.initial_clusters(), 2); // first explored config
/// ```
#[derive(Debug, Clone)]
pub struct IntervalExplore {
    cfg: IntervalExploreConfig,
    interval_length: u64,
    discontinued: bool,
    have_reference: bool,
    stable: bool,
    num_ipc_variations: f64,
    instability: f64,
    /// Index into `explore_configs` during exploration.
    explore_idx: usize,
    current: usize,
    /// IPC recorded for each explored configuration this phase.
    explored_ipc: Vec<f64>,
    reference_branches: u64,
    reference_memrefs: u64,
    reference_ipc: f64,
    /// How many intervals each configuration has been chosen for
    /// ("most popular" fallback when discontinuing).
    popularity: Vec<u64>,
    interval: IntervalCounters,
    total_committed: u64,
    macrophase_mark: u64,
    decision_index: u64,
    last_decision: Option<DecisionRecord>,
}

impl Default for IntervalExplore {
    fn default() -> IntervalExplore {
        IntervalExplore::new(IntervalExploreConfig::default())
    }
}

impl IntervalExplore {
    /// Builds the policy.
    ///
    /// # Panics
    ///
    /// Panics if `explore_configs` is empty, or `initial_interval` or
    /// `metric_divisor` is 0.
    pub fn new(cfg: IntervalExploreConfig) -> IntervalExplore {
        assert!(!cfg.explore_configs.is_empty(), "need at least one configuration");
        assert!(cfg.initial_interval > 0, "interval length must be non-zero");
        assert!(cfg.metric_divisor > 0, "metric divisor must be non-zero");
        let current = cfg.explore_configs[0];
        IntervalExplore {
            interval_length: cfg.initial_interval,
            discontinued: false,
            have_reference: false,
            stable: false,
            num_ipc_variations: 0.0,
            instability: 0.0,
            explore_idx: 0,
            current,
            explored_ipc: Vec::with_capacity(cfg.explore_configs.len()),
            reference_branches: 0,
            reference_memrefs: 0,
            reference_ipc: 0.0,
            popularity: vec![0; cfg.explore_configs.len()],
            interval: IntervalCounters::default(),
            total_committed: 0,
            macrophase_mark: 0,
            decision_index: 0,
            last_decision: None,
            cfg,
        }
    }

    /// The interval length currently in use.
    pub fn interval_length(&self) -> u64 {
        self.interval_length
    }

    /// Whether the algorithm has turned itself off.
    pub fn is_discontinued(&self) -> bool {
        self.discontinued
    }

    /// Whether the policy has settled on a configuration for the
    /// current phase.
    pub fn is_stable(&self) -> bool {
        self.stable
    }

    fn significant_metric_change(&self) -> bool {
        let threshold = (self.interval_length / self.cfg.metric_divisor).max(1);
        let db = self.interval.branches.abs_diff(self.reference_branches);
        let dm = self.interval.memrefs.abs_diff(self.reference_memrefs);
        db > threshold || dm > threshold
    }

    fn significant_ipc_change(&self, ipc: f64) -> bool {
        if self.reference_ipc <= 0.0 {
            return false;
        }
        (ipc - self.reference_ipc).abs() / self.reference_ipc > self.cfg.ipc_noise
    }

    /// Evaluates a finished interval; returns a new cluster request.
    ///
    /// Every call also records one [`DecisionRecord`] (drained through
    /// [`ReconfigPolicy::take_decision`]) capturing which Figure 4
    /// branch was taken and why.
    fn end_interval(&mut self, now: u64) -> Option<usize> {
        let ipc = self.interval.ipc(now);
        let mut request = None;
        let mut reason = DecisionReason::StableNoChange;
        let had_reference = self.have_reference;
        let (branch_delta, memref_delta) = if had_reference {
            (
                self.interval.branches as i64 - self.reference_branches as i64,
                self.interval.memrefs as i64 - self.reference_memrefs as i64,
            )
        } else {
            (0, 0)
        };

        if self.have_reference {
            let metric_change = self.significant_metric_change();
            let ipc_change = self.stable && self.significant_ipc_change(ipc);
            if metric_change
                || (ipc_change && self.num_ipc_variations > self.cfg.ipc_variation_threshold)
            {
                // Phase change: restart exploration.
                reason = if metric_change {
                    DecisionReason::PhaseChangeMetrics
                } else {
                    DecisionReason::PhaseChangeIpc
                };
                self.have_reference = false;
                self.stable = false;
                self.num_ipc_variations = 0.0;
                self.explore_idx = 0;
                self.explored_ipc.clear();
                self.current = self.cfg.explore_configs[0];
                request = Some(self.current);
                self.instability += 2.0;
                if self.instability > self.cfg.instability_threshold {
                    self.interval_length *= 2;
                    self.instability = 0.0;
                    reason = DecisionReason::IntervalDoubled;
                    if self.interval_length > self.cfg.max_interval {
                        // Give up: pin the most popular configuration.
                        let best = self
                            .popularity
                            .iter()
                            .enumerate()
                            .max_by_key(|&(_, &n)| n)
                            .map(|(i, _)| self.cfg.explore_configs[i])
                            .expect("configs non-empty");
                        self.discontinued = true;
                        self.current = best;
                        request = Some(best);
                        reason = DecisionReason::Discontinued;
                    }
                }
            } else {
                if ipc_change {
                    self.num_ipc_variations += 2.0;
                } else {
                    self.num_ipc_variations = (self.num_ipc_variations - 0.125).max(-2.0);
                }
                self.instability = (self.instability - 0.125).max(0.0);
            }
        } else {
            // First interval of a new phase: it becomes the reference.
            reason = DecisionReason::Reference;
            self.have_reference = true;
            self.reference_branches = self.interval.branches;
            self.reference_memrefs = self.interval.memrefs;
        }

        if self.have_reference && !self.stable && !self.discontinued && request.is_none() {
            // Exploration: record this configuration's IPC, move on.
            self.explored_ipc.push(ipc);
            self.explore_idx += 1;
            if self.explore_idx >= self.cfg.explore_configs.len() {
                let (best_idx, best_ipc) = self
                    .explored_ipc
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, &v)| (i, v))
                    .expect("explored at least one config");
                self.current = self.cfg.explore_configs[best_idx];
                self.reference_ipc = best_ipc;
                self.stable = true;
                reason = DecisionReason::ExplorationComplete;
            } else {
                self.current = self.cfg.explore_configs[self.explore_idx];
                if had_reference {
                    reason = DecisionReason::Exploring;
                }
            }
            request = Some(self.current);
        }

        if self.stable {
            if let Some(slot) =
                self.cfg.explore_configs.iter().position(|&c| c == self.current)
            {
                self.popularity[slot] += 1;
            }
        }

        let state = if self.discontinued {
            PolicyState::Discontinued
        } else if self.stable {
            PolicyState::Stable
        } else {
            PolicyState::Exploring
        };
        let explored_ipc = match reason {
            DecisionReason::Reference
            | DecisionReason::Exploring
            | DecisionReason::ExplorationComplete => self.explored_ipc.clone(),
            _ => Vec::new(),
        };
        self.decision_index += 1;
        self.last_decision = Some(DecisionRecord {
            interval: self.decision_index,
            commit: self.total_committed,
            start_cycle: self.interval.start_cycle,
            cycle: now,
            state,
            ipc,
            branch_delta,
            memref_delta,
            instability: self.instability,
            explored_ipc,
            interval_length: self.interval_length,
            clusters: self.current,
            reason,
        });
        request
    }

    fn macrophase_reset(&mut self) {
        self.interval_length = self.cfg.initial_interval;
        self.discontinued = false;
        self.have_reference = false;
        self.stable = false;
        self.num_ipc_variations = 0.0;
        self.instability = 0.0;
        self.explore_idx = 0;
        self.explored_ipc.clear();
        self.popularity.iter_mut().for_each(|p| *p = 0);
        self.current = self.cfg.explore_configs[0];
    }
}

impl ReconfigPolicy for IntervalExplore {
    fn name(&self) -> String {
        format!("interval-explore/{}", self.cfg.initial_interval)
    }

    fn initial_clusters(&self) -> usize {
        self.cfg.explore_configs[0]
    }

    fn on_commit(&mut self, event: &CommitEvent) -> Option<usize> {
        self.total_committed += 1;
        if self.interval.instructions == 0 && self.interval.start_cycle == 0 {
            self.interval.start_cycle = event.cycle;
        }
        self.interval.instructions += 1;
        if event.is_branch {
            self.interval.branches += 1;
        }
        if event.is_memref {
            self.interval.memrefs += 1;
        }

        // Macrophase boundary: restart from scratch.
        if self.total_committed - self.macrophase_mark >= self.cfg.macrophase_interval {
            self.macrophase_mark = self.total_committed;
            let ipc = self.interval.ipc(event.cycle);
            let start_cycle = self.interval.start_cycle;
            self.macrophase_reset();
            self.decision_index += 1;
            self.last_decision = Some(DecisionRecord {
                interval: self.decision_index,
                commit: self.total_committed,
                start_cycle,
                cycle: event.cycle,
                state: PolicyState::Exploring,
                ipc,
                branch_delta: 0,
                memref_delta: 0,
                instability: self.instability,
                explored_ipc: Vec::new(),
                interval_length: self.interval_length,
                clusters: self.current,
                reason: DecisionReason::MacrophaseReset,
            });
            self.interval = IntervalCounters { start_cycle: event.cycle, ..Default::default() };
            return Some(self.current);
        }

        if self.discontinued || self.interval.instructions < self.interval_length {
            return None;
        }
        let request = self.end_interval(event.cycle);
        self.interval = IntervalCounters { start_cycle: event.cycle, ..Default::default() };
        request
    }

    fn take_decision(&mut self) -> Option<DecisionRecord> {
        self.last_decision.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(seq: u64, cycle: u64, is_branch: bool, is_memref: bool) -> CommitEvent {
        CommitEvent {
            seq,
            pc: (seq % 64) as u32,
            cycle,
            is_branch,
            is_cond_branch: is_branch,
            is_call: false,
            is_return: false,
            is_memref,
            distant: false,
            mispredicted: false,
        }
    }

    /// Drives the policy through `n` intervals of uniform behaviour
    /// with the given cycles-per-instruction; returns requests made.
    fn drive(
        policy: &mut IntervalExplore,
        intervals: u64,
        cpi: u64,
        branch_every: u64,
        start_seq: u64,
        start_cycle: u64,
    ) -> (Vec<usize>, u64, u64) {
        let mut requests = Vec::new();
        let mut seq = start_seq;
        let mut cycle = start_cycle;
        let n = intervals * policy.interval_length();
        for _ in 0..n {
            seq += 1;
            cycle += cpi;
            let is_branch = seq.is_multiple_of(branch_every);
            if let Some(r) = policy.on_commit(&event(seq, cycle, is_branch, seq.is_multiple_of(3))) {
                requests.push(r);
            }
        }
        (requests, seq, cycle)
    }

    #[test]
    fn explores_all_configs_then_settles() {
        let mut p = IntervalExplore::new(IntervalExploreConfig {
            initial_interval: 1_000,
            ..Default::default()
        });
        let (requests, _, _) = drive(&mut p, 6, 2, 10, 0, 0);
        // After the first (reference) interval, exploration walks
        // 4 → 8 → 16 and then picks a winner.
        assert!(requests.len() >= 3, "requests: {requests:?}");
        assert_eq!(&requests[..3], &[4, 8, 16]);
        assert!(p.is_stable());
    }

    #[test]
    fn uniform_behaviour_stays_stable() {
        let mut p = IntervalExplore::new(IntervalExploreConfig {
            initial_interval: 1_000,
            ..Default::default()
        });
        let (_, seq, cycle) = drive(&mut p, 8, 2, 10, 0, 0);
        assert!(p.is_stable());
        let (requests, _, _) = drive(&mut p, 20, 2, 10, seq, cycle);
        assert!(requests.is_empty(), "no reconfigurations in steady state: {requests:?}");
    }

    #[test]
    fn metric_shift_triggers_reexploration() {
        let mut p = IntervalExplore::new(IntervalExploreConfig {
            initial_interval: 1_000,
            ..Default::default()
        });
        let (_, seq, cycle) = drive(&mut p, 8, 2, 10, 0, 0);
        assert!(p.is_stable());
        // Branch frequency jumps from 1/10 to 1/3: a phase change.
        let (requests, _, _) = drive(&mut p, 2, 2, 3, seq, cycle);
        assert!(!requests.is_empty(), "phase change should restart exploration");
        assert_eq!(requests[0], 2, "exploration restarts at the smallest config");
    }

    #[test]
    fn frequent_phase_changes_double_interval() {
        let mut p = IntervalExplore::new(IntervalExploreConfig {
            initial_interval: 1_000,
            ..Default::default()
        });
        let mut seq = 0;
        let mut cycle = 0;
        // Alternate branch density every interval to force instability.
        for round in 0..40 {
            let be = if round % 2 == 0 { 3 } else { 20 };
            let (_, s, c) = drive(&mut p, 1, 2, be, seq, cycle);
            seq = s;
            cycle = c;
        }
        assert!(
            p.interval_length() > 1_000,
            "interval should have doubled, still {}",
            p.interval_length()
        );
    }

    #[test]
    fn gives_up_past_max_interval() {
        let mut p = IntervalExplore::new(IntervalExploreConfig {
            initial_interval: 1_000,
            max_interval: 2_000,
            ..Default::default()
        });
        let mut seq = 0;
        let mut cycle = 0;
        for round in 0..60 {
            let be = if round % 2 == 0 { 3 } else { 20 };
            let (_, s, c) = drive(&mut p, 1, 2, be, seq, cycle);
            seq = s;
            cycle = c;
        }
        assert!(p.is_discontinued(), "algorithm should have turned itself off");
        // Once discontinued, no more requests ever.
        let (requests, _, _) = drive(&mut p, 4, 2, 3, seq, cycle);
        assert!(requests.is_empty());
    }

    #[test]
    fn ipc_noise_is_tolerated_when_stable() {
        let mut p = IntervalExplore::new(IntervalExploreConfig {
            initial_interval: 1_000,
            ..Default::default()
        });
        let (_, mut seq, mut cycle) = drive(&mut p, 8, 2, 10, 0, 0);
        assert!(p.is_stable());
        // One noisy interval (double CPI) then back to normal: the
        // num_ipc_variations hysteresis should absorb it.
        let (r1, s, c) = drive(&mut p, 1, 4, 10, seq, cycle);
        seq = s;
        cycle = c;
        let (r2, _, _) = drive(&mut p, 4, 2, 10, seq, cycle);
        assert!(r1.is_empty() && r2.is_empty(), "noise absorbed: {r1:?} {r2:?}");
        assert!(p.is_stable());
    }

    #[test]
    fn macrophase_resets_everything() {
        let mut p = IntervalExplore::new(IntervalExploreConfig {
            initial_interval: 1_000,
            macrophase_interval: 10_000,
            ..Default::default()
        });
        let (_, seq, cycle) = drive(&mut p, 9, 2, 10, 0, 0);
        let before = p.is_stable();
        let (requests, _, _) = drive(&mut p, 2, 2, 10, seq, cycle);
        assert!(before, "should have stabilised before the macrophase");
        assert!(
            requests.contains(&p.cfg.explore_configs[0]),
            "macrophase restart goes back to the first config: {requests:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one configuration")]
    fn rejects_empty_configs() {
        let _ = IntervalExplore::new(IntervalExploreConfig {
            explore_configs: vec![],
            ..Default::default()
        });
    }
}
