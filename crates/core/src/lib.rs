//! Dynamic cluster-allocation policies — the contribution of
//! Balasubramonian, Dwarkadas & Albonesi, *"Dynamically Managing the
//! Communication-Parallelism Trade-off in Future Clustered
//! Processors"* (ISCA 2003).
//!
//! A 16-cluster processor gives a thread a huge instruction window but
//! pays long inter-cluster trips for operands and cache data; a
//! 4-cluster subset keeps communication local but can only exploit
//! nearby ILP. These policies decide, at run time, how many clusters
//! the thread should use:
//!
//! * [`IntervalExplore`] — the robust interval-based algorithm with
//!   exploration and an adaptive interval length (paper Figure 4;
//!   ~11% mean speedup over the best static configuration).
//! * [`IntervalDistantIlp`] — no exploration: one wide probe interval
//!   measures *distant ILP* and directly picks 4 or 16 clusters
//!   (paper §4.3).
//! * [`FineGrain`] — reconfiguration at basic-block boundaries driven
//!   by a sampled reconfiguration table (paper §4.4; ~15% mean
//!   speedup), in both the every-Nth-branch and subroutine
//!   (call/return) variants.
//! * [`phase`] — the offline instability analysis behind Table 4.
//!
//! All policies implement
//! [`ReconfigPolicy`](clustered_sim::ReconfigPolicy) and plug into
//! [`Processor`](clustered_sim::Processor).
//!
//! # Examples
//!
//! ```
//! use clustered_core::IntervalExplore;
//! use clustered_sim::{Processor, SimConfig};
//! use clustered_workloads::by_name;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = by_name("gzip").expect("known workload");
//! let stream = workload.trace().map(Result::unwrap);
//! let mut cpu =
//!     Processor::new(SimConfig::default(), stream, Box::new(IntervalExplore::default()))?;
//! let stats = cpu.run(30_000)?;
//! assert!(stats.committed >= 30_000);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod distant;
mod explore;
pub mod export;
mod finegrain;
pub mod phase;
mod recording;

pub use distant::{IntervalDistantIlp, IntervalDistantIlpConfig};
pub use explore::{IntervalExplore, IntervalExploreConfig};
pub use export::{
    chrome_trace, chrome_trace_with_host, decisions_jsonl, host_chrome_trace, host_profile_json,
    timeline_jsonl, HOST_TID_BASE,
};
pub use finegrain::{FineGrain, FineGrainConfig, Trigger};
pub use recording::{Recording, TimelineEntry};
