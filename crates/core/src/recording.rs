//! A transparent recording wrapper around any policy: per-interval
//! metrics plus the active-cluster decision, for timelines and CSV
//! export.

use crate::phase::IntervalRecord;
use clustered_sim::{CommitEvent, DecisionRecord, ReconfigPolicy};
use std::cell::RefCell;
use std::rc::Rc;

/// One recorded interval: the metrics plus the cluster count the
/// wrapped policy had selected going *into* the interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineEntry {
    /// Committed-instruction index at the end of the interval.
    pub committed: u64,
    /// The interval's metrics.
    pub record: IntervalRecord,
    /// Active clusters during (the start of) the interval.
    pub clusters: usize,
}

/// Wraps a [`ReconfigPolicy`], forwarding every event while recording a
/// per-interval timeline into a shared buffer.
///
/// # Examples
///
/// ```
/// use clustered_core::{IntervalDistantIlp, Recording};
/// use clustered_sim::{Processor, SimConfig};
/// use clustered_workloads::by_name;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (policy, timeline) = Recording::new(IntervalDistantIlp::with_interval(1_000), 1_000);
/// let w = by_name("gzip").expect("known workload");
/// let stream = w.trace().map(Result::unwrap);
/// let mut cpu = Processor::new(SimConfig::default(), stream, Box::new(policy))?;
/// cpu.run(20_000)?;
/// assert!(timeline.borrow().len() >= 19);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Recording<P> {
    inner: P,
    interval: u64,
    current: IntervalRecord,
    start_cycle: u64,
    committed: u64,
    clusters: usize,
    out: Rc<RefCell<Vec<TimelineEntry>>>,
}

impl<P: ReconfigPolicy> Recording<P> {
    /// Wraps `inner`, recording one [`TimelineEntry`] per `interval`
    /// committed instructions into the returned shared buffer.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(inner: P, interval: u64) -> (Recording<P>, Rc<RefCell<Vec<TimelineEntry>>>) {
        assert!(interval > 0, "interval must be non-zero");
        let out = Rc::new(RefCell::new(Vec::new()));
        let clusters = inner.initial_clusters();
        (
            Recording {
                inner,
                interval,
                current: IntervalRecord::default(),
                start_cycle: 0,
                committed: 0,
                clusters,
                out: Rc::clone(&out),
            },
            out,
        )
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: ReconfigPolicy> ReconfigPolicy for Recording<P> {
    fn name(&self) -> String {
        format!("{}+timeline", self.inner.name())
    }

    fn initial_clusters(&self) -> usize {
        self.inner.initial_clusters()
    }

    fn on_commit(&mut self, event: &CommitEvent) -> Option<usize> {
        if self.current.instructions == 0 && self.start_cycle == 0 {
            self.start_cycle = event.cycle;
        }
        self.committed += 1;
        self.current.instructions += 1;
        if event.is_branch {
            self.current.branches += 1;
        }
        if event.is_memref {
            self.current.memrefs += 1;
        }
        if self.current.instructions >= self.interval {
            self.current.cycles = event.cycle.saturating_sub(self.start_cycle).max(1);
            self.out.borrow_mut().push(TimelineEntry {
                committed: self.committed,
                record: self.current,
                clusters: self.clusters,
            });
            self.current = IntervalRecord::default();
            self.start_cycle = event.cycle;
        }
        let request = self.inner.on_commit(event);
        if let Some(n) = request {
            self.clusters = n;
        }
        request
    }

    fn take_decision(&mut self) -> Option<DecisionRecord> {
        self.inner.take_decision()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustered_sim::FixedPolicy;

    fn event(seq: u64, cycle: u64) -> CommitEvent {
        CommitEvent {
            seq,
            pc: 0,
            cycle,
            is_branch: seq.is_multiple_of(5),
            is_cond_branch: false,
            is_call: false,
            is_return: false,
            is_memref: seq.is_multiple_of(3),
            distant: false,
            mispredicted: false,
        }
    }

    #[test]
    fn records_one_entry_per_interval() {
        let (mut p, out) = Recording::new(FixedPolicy::new(8), 100);
        assert_eq!(p.initial_clusters(), 8);
        for seq in 1..=250u64 {
            assert_eq!(p.on_commit(&event(seq, seq * 2)), None);
        }
        let timeline = out.borrow();
        assert_eq!(timeline.len(), 2);
        assert_eq!(timeline[0].committed, 100);
        assert_eq!(timeline[0].clusters, 8);
        assert_eq!(timeline[0].record.instructions, 100);
        assert_eq!(timeline[0].record.branches, 20);
        assert!(timeline[0].record.cycles >= 198);
    }

    #[test]
    fn forwards_inner_requests_and_tracks_clusters() {
        struct Flip(usize);
        impl ReconfigPolicy for Flip {
            fn name(&self) -> String {
                "flip".into()
            }
            fn initial_clusters(&self) -> usize {
                16
            }
            fn on_commit(&mut self, event: &CommitEvent) -> Option<usize> {
                if event.seq.is_multiple_of(150) {
                    self.0 = if self.0 == 16 { 4 } else { 16 };
                    Some(self.0)
                } else {
                    None
                }
            }
        }
        let (mut p, out) = Recording::new(Flip(16), 100);
        let mut requests = 0;
        for seq in 1..=400u64 {
            if p.on_commit(&event(seq, seq)).is_some() {
                requests += 1;
            }
        }
        assert_eq!(requests, 2, "inner requests must pass through");
        let timeline = out.borrow();
        assert_eq!(timeline.len(), 4);
        assert_eq!(timeline[0].clusters, 16);
        assert_eq!(timeline[1].clusters, 4, "first flip at seq 150 lands inside interval 2");
        // The flip at seq 300 is processed after interval 3's entry is
        // pushed, so that entry still reports the pre-flip machine.
        assert_eq!(timeline[2].clusters, 4);
        assert_eq!(timeline[3].clusters, 16, "interval 4 sees the second flip");
    }

    #[test]
    fn name_marks_the_wrapper() {
        let (p, _) = Recording::new(FixedPolicy::new(2), 10);
        assert_eq!(p.name(), "fixed-2+timeline");
        assert_eq!(p.inner().name(), "fixed-2");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_interval() {
        let _ = Recording::new(FixedPolicy::new(2), 0);
    }
}
