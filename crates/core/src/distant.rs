//! The interval-based scheme *without* exploration (paper §4.3).
//!
//! Instead of trying every configuration, the policy runs one probe
//! interval on all 16 clusters, counts how many instructions issued
//! *distant* from the ROB head, and picks 16 clusters if there is
//! enough distant ILP to use them, else 4. Because no exploration is
//! needed, it reacts quickly, making small intervals (1K instructions)
//! meaningful — at the cost of noisier measurements.

use clustered_sim::{CommitEvent, DecisionReason, DecisionRecord, PolicyState, ReconfigPolicy};

/// Tunables of [`IntervalDistantIlp`], defaults per the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalDistantIlpConfig {
    /// Fixed interval length in committed instructions.
    pub interval_length: u64,
    /// Distant-instruction count per 1000 committed above which the
    /// wide configuration is chosen (paper: 160 per 1000).
    pub distant_threshold_per_k: u64,
    /// The narrow configuration (paper: 4 clusters).
    pub narrow: usize,
    /// The wide configuration, also used for probing (paper: 16).
    pub wide: usize,
    /// A branch/memref count change larger than
    /// `interval_length / metric_divisor` signals a phase change.
    pub metric_divisor: u64,
    /// Relative IPC deviation treated as a phase change.
    pub ipc_noise: f64,
    /// Intervals discarded at start-up before the first probe (the
    /// pipeline, predictors, and caches are still filling).
    pub startup_skip: u64,
}

impl Default for IntervalDistantIlpConfig {
    fn default() -> IntervalDistantIlpConfig {
        IntervalDistantIlpConfig {
            interval_length: 1_000,
            distant_threshold_per_k: 160,
            narrow: 4,
            wide: 16,
            metric_divisor: 100,
            ipc_noise: 0.10,
            startup_skip: 1,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Probing at the wide configuration to measure distant ILP.
    Probe,
    /// Locked to a configuration until the phase changes.
    Locked,
}

/// Which signal tripped the phase-change detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhaseSignal {
    /// Branch/memref counts deviated from the reference.
    Metrics,
    /// IPC deviated from the reference.
    Ipc,
}

/// The §4.3 policy: probe on the wide machine, then lock to narrow or
/// wide by the measured distant ILP.
#[derive(Debug, Clone)]
pub struct IntervalDistantIlp {
    cfg: IntervalDistantIlpConfig,
    mode: Mode,
    current: usize,
    instructions: u64,
    start_cycle: u64,
    branches: u64,
    memrefs: u64,
    distant: u64,
    reference_branches: u64,
    reference_memrefs: u64,
    reference_ipc: f64,
    have_reference: bool,
    skip_left: u64,
    committed: u64,
    decision_index: u64,
    last_decision: Option<DecisionRecord>,
}

impl Default for IntervalDistantIlp {
    fn default() -> IntervalDistantIlp {
        IntervalDistantIlp::new(IntervalDistantIlpConfig::default())
    }
}

impl IntervalDistantIlp {
    /// Builds the policy.
    ///
    /// # Panics
    ///
    /// Panics if `interval_length` or `metric_divisor` is zero, or
    /// `narrow >= wide`.
    pub fn new(cfg: IntervalDistantIlpConfig) -> IntervalDistantIlp {
        assert!(cfg.interval_length > 0, "interval length must be non-zero");
        assert!(cfg.metric_divisor > 0, "metric divisor must be non-zero");
        assert!(cfg.narrow < cfg.wide, "narrow config must be smaller than wide");
        IntervalDistantIlp {
            mode: Mode::Probe,
            current: cfg.wide,
            instructions: 0,
            start_cycle: 0,
            branches: 0,
            memrefs: 0,
            distant: 0,
            reference_branches: 0,
            reference_memrefs: 0,
            reference_ipc: 0.0,
            have_reference: false,
            skip_left: cfg.startup_skip,
            committed: 0,
            decision_index: 0,
            last_decision: None,
            cfg,
        }
    }

    /// Convenience constructor varying only the interval length (the
    /// paper's Figure 5 shows 1K, 10K, and 100K variants).
    pub fn with_interval(interval_length: u64) -> IntervalDistantIlp {
        IntervalDistantIlp::new(IntervalDistantIlpConfig {
            interval_length,
            ..IntervalDistantIlpConfig::default()
        })
    }

    /// The configuration currently selected.
    pub fn current_clusters(&self) -> usize {
        self.current
    }

    fn phase_signal(&self, ipc: f64) -> Option<PhaseSignal> {
        if !self.have_reference {
            return None;
        }
        let threshold = (self.cfg.interval_length / self.cfg.metric_divisor).max(1);
        if self.branches.abs_diff(self.reference_branches) > threshold
            || self.memrefs.abs_diff(self.reference_memrefs) > threshold
        {
            return Some(PhaseSignal::Metrics);
        }
        let ipc_deviates = self.reference_ipc > 0.0
            && (ipc - self.reference_ipc).abs() / self.reference_ipc > self.cfg.ipc_noise;
        ipc_deviates.then_some(PhaseSignal::Ipc)
    }

    fn record_decision(&mut self, now: u64, state: PolicyState, ipc: f64, reason: DecisionReason) {
        let (branch_delta, memref_delta) = if self.have_reference {
            (
                self.branches as i64 - self.reference_branches as i64,
                self.memrefs as i64 - self.reference_memrefs as i64,
            )
        } else {
            (0, 0)
        };
        self.decision_index += 1;
        self.last_decision = Some(DecisionRecord {
            interval: self.decision_index,
            commit: self.committed,
            start_cycle: self.start_cycle,
            cycle: now,
            state,
            ipc,
            branch_delta,
            memref_delta,
            instability: 0.0,
            explored_ipc: Vec::new(),
            interval_length: self.cfg.interval_length,
            clusters: self.current,
            reason,
        });
    }

    fn end_interval(&mut self, now: u64) -> Option<usize> {
        let cycles = now.saturating_sub(self.start_cycle).max(1);
        let ipc = self.instructions as f64 / cycles as f64;
        match self.mode {
            Mode::Probe => {
                // Decide from the measured distant ILP.
                let threshold =
                    self.cfg.distant_threshold_per_k * self.cfg.interval_length / 1_000;
                let choice =
                    if self.distant > threshold { self.cfg.wide } else { self.cfg.narrow };
                self.mode = Mode::Locked;
                self.have_reference = true;
                self.reference_branches = self.branches;
                self.reference_memrefs = self.memrefs;
                self.reference_ipc = 0.0; // set after the first locked interval
                let changed = choice != self.current;
                self.current = choice;
                self.record_decision(now, PolicyState::Stable, ipc, DecisionReason::ProbeResult);
                changed.then_some(choice)
            }
            Mode::Locked => {
                let signal = self.phase_signal(ipc);
                if let Some(signal) = signal {
                    let reason = match signal {
                        PhaseSignal::Metrics => DecisionReason::PhaseChangeMetrics,
                        PhaseSignal::Ipc => DecisionReason::PhaseChangeIpc,
                    };
                    // Record before the state flips so the deltas that
                    // tripped the detector are preserved.
                    self.record_decision(now, PolicyState::Exploring, ipc, reason);
                    // Re-probe on the wide machine.
                    self.mode = Mode::Probe;
                    self.have_reference = false;
                    let changed = self.current != self.cfg.wide;
                    self.current = self.cfg.wide;
                    if let Some(d) = self.last_decision.as_mut() {
                        d.clusters = self.cfg.wide;
                    }
                    changed.then_some(self.cfg.wide)
                } else {
                    if self.reference_ipc == 0.0 {
                        self.reference_ipc = ipc;
                    }
                    self.record_decision(
                        now,
                        PolicyState::Stable,
                        ipc,
                        DecisionReason::StableNoChange,
                    );
                    None
                }
            }
        }
    }
}

impl ReconfigPolicy for IntervalDistantIlp {
    fn name(&self) -> String {
        format!("interval-distant/{}", self.cfg.interval_length)
    }

    fn initial_clusters(&self) -> usize {
        self.cfg.wide
    }

    fn on_commit(&mut self, event: &CommitEvent) -> Option<usize> {
        if self.instructions == 0 && self.start_cycle == 0 {
            self.start_cycle = event.cycle;
        }
        self.committed += 1;
        self.instructions += 1;
        if event.is_branch {
            self.branches += 1;
        }
        if event.is_memref {
            self.memrefs += 1;
        }
        if event.distant {
            self.distant += 1;
        }
        if self.instructions < self.cfg.interval_length {
            return None;
        }
        let request = if self.skip_left > 0 {
            // Start-up interval: measurements are cold, discard them.
            self.skip_left -= 1;
            let cycles = event.cycle.saturating_sub(self.start_cycle).max(1);
            let ipc = self.instructions as f64 / cycles as f64;
            self.record_decision(
                event.cycle,
                PolicyState::Cooldown,
                ipc,
                DecisionReason::StartupSkip,
            );
            None
        } else {
            self.end_interval(event.cycle)
        };
        self.instructions = 0;
        self.start_cycle = event.cycle;
        self.branches = 0;
        self.memrefs = 0;
        self.distant = 0;
        request
    }

    fn take_decision(&mut self) -> Option<DecisionRecord> {
        self.last_decision.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(seq: u64, cycle: u64, distant: bool, is_branch: bool) -> CommitEvent {
        CommitEvent {
            seq,
            pc: (seq % 64) as u32,
            cycle,
            is_branch,
            is_cond_branch: is_branch,
            is_call: false,
            is_return: false,
            is_memref: seq.is_multiple_of(4),
            distant,
            mispredicted: false,
        }
    }

    fn drive(
        p: &mut IntervalDistantIlp,
        n: u64,
        distant_frac_per_k: u64,
        branch_every: u64,
        seq0: u64,
    ) -> (Vec<usize>, u64) {
        let mut requests = Vec::new();
        let mut seq = seq0;
        for _ in 0..n {
            seq += 1;
            let distant = (seq % 1_000) < distant_frac_per_k;
            if let Some(r) = p.on_commit(&event(seq, seq * 2, distant, seq.is_multiple_of(branch_every))) {
                requests.push(r);
            }
        }
        (requests, seq)
    }

    #[test]
    fn high_distant_ilp_selects_wide() {
        let mut p = IntervalDistantIlp::default();
        assert_eq!(p.initial_clusters(), 16);
        let (_, _) = drive(&mut p, 3_000, 400, 10, 0);
        assert_eq!(p.current_clusters(), 16);
    }

    #[test]
    fn low_distant_ilp_selects_narrow() {
        let mut p = IntervalDistantIlp::default();
        let (requests, _) = drive(&mut p, 2_000, 20, 10, 0);
        assert_eq!(p.current_clusters(), 4);
        assert!(requests.contains(&4));
    }

    #[test]
    fn phase_change_reprobes_wide() {
        let mut p = IntervalDistantIlp::default();
        let (_, seq) = drive(&mut p, 5_000, 20, 10, 0);
        assert_eq!(p.current_clusters(), 4);
        // Branch density shift → re-probe at 16.
        let (requests, _) = drive(&mut p, 1_000, 20, 3, seq);
        assert!(requests.contains(&16), "re-probe expected: {requests:?}");
    }

    #[test]
    fn threshold_scales_with_interval() {
        let mut p = IntervalDistantIlp::with_interval(10_000);
        // 170/1000 distant: just above the 160/1000 threshold.
        let (_, _) = drive(&mut p, 20_000, 170, 10, 0);
        assert_eq!(p.current_clusters(), 16);
        let mut p = IntervalDistantIlp::with_interval(10_000);
        let (_, _) = drive(&mut p, 20_000, 150, 10, 0);
        assert_eq!(p.current_clusters(), 4);
    }

    #[test]
    #[should_panic(expected = "narrow config")]
    fn rejects_inverted_configs() {
        let _ = IntervalDistantIlp::new(IntervalDistantIlpConfig {
            narrow: 16,
            wide: 4,
            ..Default::default()
        });
    }
}
