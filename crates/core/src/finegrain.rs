//! Fine-grained reconfiguration at basic-block boundaries (paper §4.4).
//!
//! Every branch (or, in the subroutine variant, every call/return) is a
//! potential phase boundary. The first `samples` dynamic instances of a
//! trigger measure the *distant ILP* of the 360 instructions committed
//! after it; once sampled, a *reconfiguration table* entry advises a
//! narrow or wide configuration whenever that trigger is seen again.
//! Unsampled triggers run wide so their distant ILP can be observed.
//! The table is rebuilt periodically because the code after a branch
//! can change behaviour over time (the `gzip` failure mode the paper
//! discusses).

use clustered_sim::{
    CommitEvent, DecisionReason, DecisionRecord, PolicyState, ReconfigPolicy,
    FIXED_CHECKPOINT_COMMITS,
};
use std::collections::VecDeque;

/// What commits count as reconfiguration triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Any control transfer (the paper's every-Nth-branch scheme).
    Branch,
    /// Calls and returns only (the paper's subroutine scheme).
    CallReturn,
}

/// Tunables of the fine-grained policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FineGrainConfig {
    /// Committed instructions whose distant ILP is attributed to a
    /// trigger (paper: 360 ≈ three narrow-machine windows).
    pub window: usize,
    /// Distant-instruction count within the window above which the
    /// wide configuration is advised (paper's 160-per-1000 rate scaled
    /// to the 360-instruction window).
    pub distant_threshold: u64,
    /// Samples collected per trigger before advice is computed.
    pub samples: u32,
    /// Reconfiguration-table entries (direct-mapped, tagged).
    pub table_entries: usize,
    /// Attempt reconfiguration only at every Nth trigger.
    pub every_nth: u64,
    /// Rebuild (flush) the table after this many committed
    /// instructions.
    pub flush_period: u64,
    /// The narrow configuration.
    pub narrow: usize,
    /// The wide configuration (also the measuring configuration).
    pub wide: usize,
}

impl Default for FineGrainConfig {
    fn default() -> FineGrainConfig {
        FineGrainConfig {
            window: 360,
            distant_threshold: 58,
            samples: 10,
            table_entries: 16 * 1024,
            every_nth: 5,
            flush_period: 10_000_000,
            narrow: 4,
            wide: 16,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct TableEntry {
    tag: u32,
    samples: u32,
    accumulated: u64,
    advice: Option<usize>,
}

const INVALID: TableEntry =
    TableEntry { tag: u32::MAX, samples: 0, accumulated: 0, advice: None };

/// The fine-grained reconfiguration policy (both variants).
#[derive(Debug, Clone)]
pub struct FineGrain {
    cfg: FineGrainConfig,
    trigger: Trigger,
    table: Vec<TableEntry>,
    /// The last `window` committed instructions: (pc, was-trigger,
    /// was-distant).
    window: VecDeque<(u32, bool, bool)>,
    distant_in_window: u64,
    trigger_count: u64,
    committed: u64,
    last_flush: u64,
    current: usize,
    /// Total reconfiguration requests issued (for experiment reports).
    requests: u64,
    decision_index: u64,
    last_decision_commit: u64,
    last_decision_cycle: u64,
    last_decision: Option<DecisionRecord>,
}

impl FineGrain {
    /// Builds a fine-grained policy.
    ///
    /// # Panics
    ///
    /// Panics if `window`, `samples`, `every_nth`, or `table_entries`
    /// is zero, or `narrow >= wide`.
    pub fn new(trigger: Trigger, cfg: FineGrainConfig) -> FineGrain {
        assert!(cfg.window > 0, "window must be non-zero");
        assert!(cfg.samples > 0, "sample count must be non-zero");
        assert!(cfg.every_nth > 0, "trigger stride must be non-zero");
        assert!(cfg.table_entries > 0, "table must have entries");
        assert!(cfg.narrow < cfg.wide, "narrow config must be smaller than wide");
        FineGrain {
            trigger,
            table: vec![INVALID; cfg.table_entries],
            window: VecDeque::with_capacity(cfg.window + 1),
            distant_in_window: 0,
            trigger_count: 0,
            committed: 0,
            last_flush: 0,
            current: cfg.wide,
            requests: 0,
            decision_index: 0,
            last_decision_commit: 0,
            last_decision_cycle: 0,
            last_decision: None,
            cfg,
        }
    }

    /// The paper's every-5th-branch scheme with 10 samples per branch.
    pub fn branch_policy() -> FineGrain {
        FineGrain::new(Trigger::Branch, FineGrainConfig::default())
    }

    /// The paper's subroutine scheme: reconfigure at every call and
    /// return, three samples each.
    pub fn subroutine_policy() -> FineGrain {
        FineGrain::new(
            Trigger::CallReturn,
            FineGrainConfig { samples: 3, every_nth: 1, ..FineGrainConfig::default() },
        )
    }

    /// Reconfiguration requests issued so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// The configuration currently selected.
    pub fn current_clusters(&self) -> usize {
        self.current
    }

    fn is_trigger(&self, event: &CommitEvent) -> bool {
        match self.trigger {
            Trigger::Branch => event.is_branch,
            Trigger::CallReturn => event.is_call || event.is_return,
        }
    }

    /// Folds one finished trigger sample into the table.
    fn record_sample(&mut self, pc: u32, distant: u64) {
        let slot = pc as usize % self.cfg.table_entries;
        let entry = &mut self.table[slot];
        if entry.tag != pc {
            // Aliased or new: start fresh for this trigger.
            *entry = TableEntry { tag: pc, ..INVALID };
        }
        if entry.advice.is_some() {
            return; // already sampled M times
        }
        entry.accumulated += distant;
        entry.samples += 1;
        if entry.samples >= self.cfg.samples {
            let mean = entry.accumulated / u64::from(entry.samples);
            entry.advice = Some(if mean > self.cfg.distant_threshold {
                self.cfg.wide
            } else {
                self.cfg.narrow
            });
        }
    }

    /// Table advice for a trigger, if sampling has finished.
    fn advice(&self, pc: u32) -> Option<usize> {
        let entry = &self.table[pc as usize % self.cfg.table_entries];
        if entry.tag == pc {
            entry.advice
        } else {
            None
        }
    }

    /// Records one decision covering the span since the previous one.
    ///
    /// Fine-grain policies have no evaluation intervals, so the IPC in
    /// a record is a rolling figure over the commits since the last
    /// decision (or checkpoint).
    fn record_decision(&mut self, cycle: u64, state: PolicyState, reason: DecisionReason) {
        let span_commits = self.committed - self.last_decision_commit;
        let span_cycles = cycle.saturating_sub(self.last_decision_cycle).max(1);
        self.decision_index += 1;
        self.last_decision = Some(DecisionRecord {
            interval: self.decision_index,
            commit: self.committed,
            start_cycle: self.last_decision_cycle,
            cycle,
            state,
            ipc: span_commits as f64 / span_cycles as f64,
            branch_delta: 0,
            memref_delta: 0,
            instability: 0.0,
            explored_ipc: Vec::new(),
            interval_length: self.cfg.window as u64,
            clusters: self.current,
            reason,
        });
        self.last_decision_commit = self.committed;
        self.last_decision_cycle = cycle;
    }
}

impl ReconfigPolicy for FineGrain {
    fn name(&self) -> String {
        match self.trigger {
            Trigger::Branch => format!("finegrain-branch/{}", self.cfg.every_nth),
            Trigger::CallReturn => "finegrain-subroutine".to_string(),
        }
    }

    fn initial_clusters(&self) -> usize {
        self.cfg.wide
    }

    fn on_commit(&mut self, event: &CommitEvent) -> Option<usize> {
        self.committed += 1;
        if self.committed == 1 {
            self.last_decision_cycle = event.cycle;
        }
        // The code after a branch can change over a run: rebuild the
        // table periodically.
        if self.committed - self.last_flush >= self.cfg.flush_period {
            self.last_flush = self.committed;
            self.table.fill(INVALID);
            self.record_decision(event.cycle, PolicyState::Exploring, DecisionReason::TableFlush);
        }

        let trigger = self.is_trigger(event);
        self.window.push_back((event.pc, trigger, event.distant));
        if event.distant {
            self.distant_in_window += 1;
        }
        if self.window.len() > self.cfg.window {
            let (pc, was_trigger, was_distant) =
                self.window.pop_front().expect("non-empty window");
            if was_distant {
                self.distant_in_window -= 1;
            }
            if was_trigger {
                // The counter now covers the `window` instructions
                // committed after this trigger: one sample.
                let distant = self.distant_in_window;
                self.record_sample(pc, distant);
            }
        }

        let mut request = None;
        if trigger {
            self.trigger_count += 1;
            if self.trigger_count.is_multiple_of(self.cfg.every_nth) {
                let advice = self.advice(event.pc);
                let choice = advice.unwrap_or(self.cfg.wide);
                if choice != self.current {
                    self.current = choice;
                    self.requests += 1;
                    let (state, reason) = if advice.is_some() {
                        (PolicyState::Stable, DecisionReason::TriggerAdvice)
                    } else {
                        // Unsampled trigger: run wide to measure it.
                        (PolicyState::Exploring, DecisionReason::TriggerUnsampled)
                    };
                    self.record_decision(event.cycle, state, reason);
                    request = Some(choice);
                }
            }
        }
        // Quiet stretches (no flush, no configuration change) still
        // checkpoint periodically so the decision timeline covers the
        // whole run.
        if self.committed - self.last_decision_commit >= FIXED_CHECKPOINT_COMMITS {
            self.record_decision(event.cycle, PolicyState::Stable, DecisionReason::Checkpoint);
        }
        request
    }

    fn take_decision(&mut self) -> Option<DecisionRecord> {
        self.last_decision.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(seq: u64, pc: u32, is_branch: bool, is_call: bool, distant: bool) -> CommitEvent {
        CommitEvent {
            seq,
            pc,
            cycle: seq * 2,
            is_branch: is_branch || is_call,
            is_cond_branch: is_branch,
            is_call,
            is_return: false,
            is_memref: false,
            distant,
            mispredicted: false,
        }
    }

    /// Runs a loop of `body` instructions ending in a branch at `pc`,
    /// with the given distant fraction, for `iters` iterations.
    fn drive_loop(
        p: &mut FineGrain,
        iters: u64,
        body: u64,
        pc: u32,
        distant_every: u64,
        seq0: u64,
    ) -> (Vec<usize>, u64) {
        let mut requests = Vec::new();
        let mut seq = seq0;
        for _ in 0..iters {
            for i in 0..body {
                seq += 1;
                let distant = distant_every != 0 && seq.is_multiple_of(distant_every);
                let is_branch = i == body - 1;
                if let Some(r) = p.on_commit(&event(seq, if is_branch { pc } else { 1 }, is_branch, false, distant)) {
                    requests.push(r);
                }
            }
        }
        (requests, seq)
    }

    #[test]
    fn unsampled_triggers_run_wide() {
        let p = FineGrain::branch_policy();
        assert_eq!(p.initial_clusters(), 16);
        assert_eq!(p.current_clusters(), 16);
    }

    #[test]
    fn low_distant_branch_learns_narrow_advice() {
        let mut p = FineGrain::new(
            Trigger::Branch,
            FineGrainConfig { every_nth: 1, samples: 3, ..FineGrainConfig::default() },
        );
        // 40-instruction loop, no distant ILP: after enough iterations
        // the loop branch's advice must be "narrow".
        let (requests, _) = drive_loop(&mut p, 100, 40, 500, 0, 0);
        assert_eq!(p.current_clusters(), 4);
        assert!(requests.contains(&4));
    }

    #[test]
    fn high_distant_branch_stays_wide() {
        let mut p = FineGrain::new(
            Trigger::Branch,
            FineGrainConfig { every_nth: 1, samples: 3, ..FineGrainConfig::default() },
        );
        // Every other instruction distant: well above 58/360.
        let (requests, _) = drive_loop(&mut p, 100, 40, 500, 2, 0);
        assert_eq!(p.current_clusters(), 16);
        assert!(requests.is_empty(), "never needs to leave wide: {requests:?}");
    }

    #[test]
    fn advice_waits_for_m_samples() {
        let mut p = FineGrain::new(
            Trigger::Branch,
            FineGrainConfig { every_nth: 1, samples: 50, ..FineGrainConfig::default() },
        );
        // Few iterations: fewer than 50 samples of the loop branch have
        // *left the window*, so no advice yet → stays wide.
        let (requests, _) = drive_loop(&mut p, 30, 40, 500, 0, 0);
        assert!(requests.is_empty());
        assert_eq!(p.current_clusters(), 16);
    }

    #[test]
    fn every_nth_limits_reconfiguration_points() {
        let mut p = FineGrain::new(
            Trigger::Branch,
            FineGrainConfig { every_nth: 1_000_000, samples: 1, ..FineGrainConfig::default() },
        );
        let (requests, _) = drive_loop(&mut p, 200, 40, 500, 0, 0);
        assert!(requests.is_empty(), "stride too large to ever fire: {requests:?}");
    }

    #[test]
    fn table_flush_forgets_advice() {
        let mut p = FineGrain::new(
            Trigger::Branch,
            FineGrainConfig {
                every_nth: 1,
                samples: 1,
                flush_period: 2_000,
                ..FineGrainConfig::default()
            },
        );
        // Phase A: learn narrow advice for the loop branch.
        let (requests, mut seq) = drive_loop(&mut p, 30, 40, 500, 0, 0);
        assert!(requests.contains(&4), "advice learned: {requests:?}");
        // Phase B: branch-free filler crosses the 2 000-commit flush
        // point *after* all old branch instances have left the
        // 360-instruction window (otherwise they instantly re-seed the
        // flushed table — the behaviour a hot loop sees).
        for _ in 0..900 {
            seq += 1;
            assert_eq!(p.on_commit(&event(seq, 1, false, false, false)), None);
        }
        // Phase C: the branch is unsampled again → re-measure wide.
        let (requests, _) = drive_loop(&mut p, 1, 40, 500, 0, seq);
        assert_eq!(requests, vec![16], "flush must trigger re-measuring");
    }

    #[test]
    fn aliasing_resets_entry() {
        let mut p = FineGrain::new(
            Trigger::Branch,
            FineGrainConfig {
                table_entries: 1, // force aliasing
                every_nth: 1,
                samples: 1,
                ..FineGrainConfig::default()
            },
        );
        let (_, seq) = drive_loop(&mut p, 30, 40, 500, 0, 0);
        // A different branch aliases into the same slot; its first
        // lookup must not inherit the old advice.
        let (_, _) = drive_loop(&mut p, 1, 40, 777, 0, seq);
        assert_eq!(p.current_clusters(), 16, "aliased entry must re-measure");
    }

    #[test]
    fn subroutine_variant_triggers_on_calls() {
        let mut p = FineGrain::subroutine_policy();
        let mut seq = 0;
        let mut requests = Vec::new();
        // Calls with no distant ILP behind them.
        for _ in 0..400 {
            for i in 0..20 {
                seq += 1;
                if let Some(r) =
                    p.on_commit(&event(seq, if i == 0 { 900 } else { 2 }, false, i == 0, false))
                {
                    requests.push(r);
                }
            }
        }
        assert_eq!(p.current_clusters(), 4);
        assert!(p.requests() > 0);
    }

    #[test]
    #[should_panic(expected = "narrow config")]
    fn rejects_inverted_configs() {
        let _ = FineGrain::new(
            Trigger::Branch,
            FineGrainConfig { narrow: 16, wide: 4, ..FineGrainConfig::default() },
        );
    }
}
