//! Golden decision-trace test: pins the exact decision sequence
//! [`IntervalExplore`] emits on a phase-alternating synthetic
//! workload, and pins the decision-trace JSONL schema those records
//! serialize to (documented in EXPERIMENTS.md).

use clustered_core::{decisions_jsonl, IntervalExplore, IntervalExploreConfig};
use clustered_sim::{CommitEvent, DecisionReason, DecisionRecord, PolicyState, ReconfigPolicy};
use clustered_stats::{json, Json};

fn event(seq: u64, cycle: u64, is_branch: bool, is_memref: bool) -> CommitEvent {
    CommitEvent {
        seq,
        pc: (seq % 64) as u32,
        cycle,
        is_branch,
        is_cond_branch: is_branch,
        is_call: false,
        is_return: false,
        is_memref,
        distant: false,
        mispredicted: false,
    }
}

/// Drives `intervals` × the policy's interval length of a uniform
/// synthetic phase (cpi 2, one branch per `branch_every` commits, one
/// memref per 3), draining every decision the policy records.
fn drive(
    policy: &mut IntervalExplore,
    decisions: &mut Vec<DecisionRecord>,
    intervals: u64,
    branch_every: u64,
    seq: &mut u64,
) {
    let n = intervals * policy.interval_length();
    for _ in 0..n {
        *seq += 1;
        let cycle = *seq * 2;
        let e = event(*seq, cycle, seq.is_multiple_of(branch_every), seq.is_multiple_of(3));
        policy.on_commit(&e);
        if let Some(d) = policy.take_decision() {
            decisions.push(d);
        }
    }
}

fn phase_alternating_trace() -> Vec<DecisionRecord> {
    let mut p = IntervalExplore::new(IntervalExploreConfig {
        initial_interval: 1_000,
        ..Default::default()
    });
    let mut decisions = Vec::new();
    let mut seq = 0u64;
    // Phase A: 8 uniform intervals — exploration, then steady state.
    drive(&mut p, &mut decisions, 8, 10, &mut seq);
    // Phase B: branch density jumps 1/10 → 1/3, a metric phase change;
    // one further interval becomes the new phase's reference.
    drive(&mut p, &mut decisions, 2, 3, &mut seq);
    decisions
}

#[test]
fn interval_explore_decision_sequence_is_pinned() {
    let decisions = phase_alternating_trace();
    let got: Vec<(DecisionReason, PolicyState, usize)> =
        decisions.iter().map(|d| (d.reason, d.state, d.clusters)).collect();
    use DecisionReason as R;
    use PolicyState as S;
    assert_eq!(
        got,
        vec![
            // Phase A: the first interval is the reference and doubles
            // as the first exploration step; the walk then visits each
            // remaining configuration before settling.
            (R::Reference, S::Exploring, 4),
            (R::Exploring, S::Exploring, 8),
            (R::Exploring, S::Exploring, 16),
            (R::ExplorationComplete, S::Stable, 2),
            (R::StableNoChange, S::Stable, 2),
            (R::StableNoChange, S::Stable, 2),
            (R::StableNoChange, S::Stable, 2),
            (R::StableNoChange, S::Stable, 2),
            // Phase B: branch counts deviate → re-explore from the
            // smallest configuration; the next interval is the new
            // phase's reference.
            (R::PhaseChangeMetrics, S::Exploring, 2),
            (R::Reference, S::Exploring, 4),
        ],
        "decision (reason, state, clusters) sequence changed"
    );

    // Interval bookkeeping: one decision per 1 000 commits, indexed
    // from 1, covering contiguous [start_cycle, cycle] spans.
    for (i, d) in decisions.iter().enumerate() {
        assert_eq!(d.interval, i as u64 + 1);
        assert_eq!(d.commit, (i as u64 + 1) * 1_000);
        assert_eq!(d.interval_length, 1_000);
        assert!(d.start_cycle < d.cycle, "{d:?}");
        // cpi-2 stream: every interval measures IPC ≈ 0.5.
        assert!((d.ipc - 0.5).abs() < 0.01, "interval {}: ipc {}", d.interval, d.ipc);
    }

    // The explored-IPC table grows one entry per exploration step and
    // is empty outside exploration.
    let explored: Vec<usize> = decisions.iter().map(|d| d.explored_ipc.len()).collect();
    assert_eq!(explored, vec![1, 2, 3, 4, 0, 0, 0, 0, 0, 1]);

    // The phase change carries the metric deltas that tripped the
    // detector and bumps the instability factor by 2.
    let change = &decisions[8];
    assert!(change.branch_delta > 200, "branch delta: {}", change.branch_delta);
    assert!(change.memref_delta.abs() <= 2, "memref delta: {}", change.memref_delta);
    assert_eq!(change.instability, 2.0);
    // Steady-state intervals carry no instability.
    assert_eq!(decisions[7].instability, 0.0);
}

#[test]
fn decision_jsonl_schema_is_pinned() {
    let decisions = phase_alternating_trace();
    let text = decisions_jsonl(&decisions);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), decisions.len());
    for line in &lines {
        let parsed = json::parse(line).expect("every decision line parses");
        assert_eq!(
            parsed.keys().unwrap(),
            vec![
                "interval",
                "commit",
                "start_cycle",
                "cycle",
                "state",
                "ipc",
                "branch_delta",
                "memref_delta",
                "instability",
                "explored_ipc",
                "interval_length",
                "clusters",
                "reason"
            ],
            "decision JSONL schema changed — update EXPERIMENTS.md and this golden test"
        );
    }
    let first = json::parse(lines[0]).unwrap();
    assert_eq!(first.get("reason").and_then(Json::as_str), Some("reference"));
    assert_eq!(first.get("interval").and_then(Json::as_u64), Some(1));
    let change = json::parse(lines[8]).unwrap();
    assert_eq!(change.get("reason").and_then(Json::as_str), Some("phase-change-metrics"));
    assert_eq!(change.get("instability").and_then(Json::as_f64), Some(2.0));
}
