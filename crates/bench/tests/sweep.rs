//! Correctness pins for the sweep executor and trace replay:
//!
//! * **Golden**: a replayed capture produces statistics bit-identical
//!   to live emulation of the same workload (`SimStats` is all-`u64`,
//!   so `==` is exact).
//! * **Equivalence**: the parallel executor returns the same results
//!   as the serial one, in input order.
//! * **Determinism**: repeating a run — serially or under the worker
//!   pool — yields identical statistics.

use clustered_bench::sweep::{
    capture_for, run_point, run_sweep_jobs, run_sweep_serial, SweepPoint,
};
use clustered_bench::{run_experiment, run_experiment_with_steering};
use clustered_core::{IntervalDistantIlp, IntervalExplore};
use clustered_sim::{CacheModel, FixedPolicy, SimConfig, SteeringKind};

const WARMUP: u64 = 2_000;
const MEASURE: u64 = 20_000;

type PolicyFn = fn() -> Box<dyn clustered_sim::ReconfigPolicy>;

fn decentralized() -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.cache.model = CacheModel::Decentralized;
    cfg
}

/// Replay must be invisible to the timing model: same stats, bit for
/// bit, as re-emulating the workload live — across a monolithic, a
/// clustered, and a decentralized-cache configuration.
#[test]
fn golden_replay_matches_live_emulation() {
    let w = clustered_workloads::by_name("gzip").unwrap();
    let trace = capture_for(&w, WARMUP, MEASURE);
    let cases: [(SimConfig, PolicyFn); 3] = [
        (SimConfig::monolithic(), || Box::new(FixedPolicy::new(1))),
        (SimConfig::default(), || Box::new(FixedPolicy::new(8))),
        (decentralized(), || Box::new(FixedPolicy::new(16))),
    ];
    for (i, (cfg, policy)) in cases.into_iter().enumerate() {
        let live = run_experiment(&w, cfg, policy(), WARMUP, MEASURE);
        let point = SweepPoint::new(format!("gzip/{i}"), &trace, cfg, policy, WARMUP, MEASURE);
        let replayed = run_point(&point);
        assert_eq!(live, replayed, "case {i}: replayed stats diverged from live emulation");
    }
}

/// The golden guarantee also holds for an adaptive policy and a
/// non-default steering heuristic — the pieces that carry state across
/// intervals.
#[test]
fn golden_replay_matches_live_adaptive_policy() {
    let w = clustered_workloads::by_name("crafty").unwrap();
    let trace = capture_for(&w, WARMUP, MEASURE);
    let live = run_experiment_with_steering(
        &w,
        SimConfig::default(),
        Box::new(IntervalExplore::default()),
        SteeringKind::ModN(3),
        WARMUP,
        MEASURE,
    );
    let point = SweepPoint::new(
        "crafty/explore",
        &trace,
        SimConfig::default(),
        || Box::new(IntervalExplore::default()),
        WARMUP,
        MEASURE,
    )
    .steering(SteeringKind::ModN(3));
    assert_eq!(live, run_point(&point), "adaptive-policy replay diverged");
}

fn mixed_grid() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for name in ["gzip", "swim", "djpeg"] {
        let w = clustered_workloads::by_name(name).unwrap();
        let trace = capture_for(&w, WARMUP, MEASURE);
        points.push(SweepPoint::new(
            format!("{name}/fixed4"),
            &trace,
            SimConfig::default(),
            || Box::new(FixedPolicy::new(4)),
            WARMUP,
            MEASURE,
        ));
        points.push(SweepPoint::new(
            format!("{name}/explore"),
            &trace,
            SimConfig::default(),
            || Box::new(IntervalExplore::default()),
            WARMUP,
            MEASURE,
        ));
        points.push(SweepPoint::new(
            format!("{name}/distant"),
            &trace,
            decentralized(),
            || Box::new(IntervalDistantIlp::default()),
            WARMUP,
            MEASURE,
        ));
    }
    points
}

/// Parallel execution must be pure speed: same results as the serial
/// loop, in input order, independent of the worker count. The worker
/// count is forced (rather than taken from the host) so the test
/// exercises true concurrency even on a single-core runner.
#[test]
fn parallel_sweep_equals_serial_sweep() {
    let points = mixed_grid();
    let serial = run_sweep_serial(&points);
    for jobs in [2, 3, 8] {
        let parallel = run_sweep_jobs(&points, jobs);
        assert_eq!(serial, parallel, "parallel ({jobs} jobs) diverged from serial");
    }
}

/// Same workload + config + policy twice → identical statistics, both
/// serially and under the worker pool.
#[test]
fn sweeps_are_deterministic_across_runs() {
    let first = run_sweep_jobs(&mixed_grid(), 3);
    let again = run_sweep_jobs(&mixed_grid(), 3);
    assert_eq!(first, again, "repeated parallel sweep diverged");
    let serial = run_sweep_serial(&mixed_grid());
    assert_eq!(first, serial, "parallel sweep diverged from fresh serial run");
}
