//! The capture cache must be invisible to experiment results: a grid
//! run from `.ctrace` files on disk produces statistics bit-identical
//! to the same grid run from fresh captures (`SimStats` is all-`u64`,
//! so `==` is exact).
//!
//! The cache directory is passed explicitly rather than through
//! `CLUSTERED_TRACE_CACHE` — `std::env::set_var` is process-global and
//! would race sibling test threads (the same reason the bench harness
//! grew its injectable seam).

use clustered_bench::sweep::{run_sweep_serial, SweepPoint};
use clustered_core::IntervalExplore;
use clustered_sim::{FixedPolicy, SimConfig, SimStats};
use clustered_workloads::{capture_for_window_cached, CapturedTrace};
use std::path::{Path, PathBuf};

const WARMUP: u64 = 2_000;
const MEASURE: u64 = 20_000;

fn grid(traces: &[CapturedTrace]) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for trace in traces {
        points.push(SweepPoint::new(
            format!("{}/fixed4", trace.name()),
            trace,
            SimConfig::default(),
            || Box::new(FixedPolicy::new(4)),
            WARMUP,
            MEASURE,
        ));
        points.push(SweepPoint::new(
            format!("{}/explore", trace.name()),
            trace,
            SimConfig::default(),
            || Box::new(IntervalExplore::default()),
            WARMUP,
            MEASURE,
        ));
    }
    points
}

fn run_grid(cache_dir: Option<&Path>) -> Vec<SimStats> {
    let traces: Vec<CapturedTrace> = ["gzip", "swim"]
        .iter()
        .map(|name| {
            let w = clustered_workloads::by_name(name).unwrap();
            capture_for_window_cached(&w, WARMUP, MEASURE, cache_dir)
        })
        .collect();
    run_sweep_serial(&grid(&traces))
}

fn test_dir() -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("ctrace-bench-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Cold run (captures live, writes the cache), warm run (loads
/// `.ctrace` files, zero emulation), and an uncached run must all
/// yield identical grid statistics.
#[test]
fn warm_cache_grid_is_bit_identical_to_cold() {
    let dir = test_dir();
    let uncached = run_grid(None);
    let cold = run_grid(Some(&dir));
    for name in ["gzip", "swim"] {
        let path = clustered_workloads::tracefile::cache_path(
            &dir,
            name,
            WARMUP + MEASURE + clustered_workloads::CAPTURE_MARGIN,
        );
        assert!(path.exists(), "cold run must leave {} behind", path.display());
        CapturedTrace::load(&path)
            .unwrap_or_else(|e| panic!("{}: invalid cache file: {e}", path.display()));
    }
    let warm = run_grid(Some(&dir));
    assert_eq!(cold, uncached, "caching changed cold-run results");
    assert_eq!(warm, cold, "warm-from-disk grid diverged from cold run");
    let _ = std::fs::remove_dir_all(dir);
}
