//! Compiled-replay bench: simulator wall-clock throughput of the
//! pre-decoded [`CompiledTrace`] path against plain [`CapturedTrace`]
//! replay (decode-on-the-fly through the blanket `TraceSource` impl).
//!
//! Both paths compute bit-identical schedules (pinned by
//! `tests/compiled_replay.rs`), so the simulated-cycle counts per case
//! pair are equal and the ratio of wall-clock minima is exactly the
//! sim-cycles/sec speedup. Cases cover the two 16-cluster shapes that
//! bound the decode fraction: `16cfg_2active` (cheap quiescent cycles,
//! decode is a large share) and `16cfg_16active` (fully active,
//! decode is diluted). Deltas are committed to
//! `results/BENCH_compiled.json` (schema in EXPERIMENTS.md), which the
//! CI `bench-cmp` self-compare gate prices.

use clustered_bench::harness::Harness;
use clustered_bench::run_stream;
use clustered_bench::sweep::capture_for;
use clustered_emu::{DecodedInst, TraceSource};
use clustered_sim::{FixedPolicy, SimConfig, SimStats, SteeringKind};
use clustered_workloads::{CapturedTrace, CompiledTrace};
use std::hint::black_box;

const WARMUP: u64 = 5_000;
const INSTRUCTIONS: u64 = 100_000;

fn config(configured: usize) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.clusters.count = configured;
    cfg
}

fn run_replay(trace: &CapturedTrace, configured: usize, active: usize) -> SimStats {
    run_stream(
        trace.replay(),
        config(configured),
        Box::new(FixedPolicy::new(active)),
        SteeringKind::default(),
        WARMUP,
        INSTRUCTIONS,
    )
}

fn run_compiled(compiled: &CompiledTrace, configured: usize, active: usize) -> SimStats {
    run_stream(
        compiled.replay(),
        config(configured),
        Box::new(FixedPolicy::new(active)),
        SteeringKind::default(),
        WARMUP,
        INSTRUCTIONS,
    )
}

/// Drains `src` through [`TraceSource::next_run`] with a fetch-sized
/// budget, mirroring how the block-batched fetch stage consumes a
/// trace, and checks the record count.
fn drain(mut src: impl TraceSource, expected: usize, out: &mut Vec<DecodedInst>) {
    let mut count = 0usize;
    loop {
        out.clear();
        let k = src.next_run(8, out);
        if k == 0 {
            break;
        }
        black_box(&*out);
        count += k;
    }
    assert_eq!(count, expected);
}

fn main() {
    let mut h = Harness::from_env("compiled");

    // Stage-level measurement first: the decode work itself, isolated
    // from the pipeline. This is the cost the compiled table deletes —
    // unpack + `Inst` lookup + field extraction per record on the
    // replay arm versus a table row copy on the compiled arm.
    {
        let w = clustered_workloads::by_name("gzip").expect("known workload");
        let trace = capture_for(&w, WARMUP, INSTRUCTIONS);
        let compiled = trace.compile();
        let n = trace.len();
        let mut out: Vec<DecodedInst> = Vec::with_capacity(16);
        h.bench("compiled/decode_gzip/replay", || {
            drain(trace.replay(), n, &mut out);
        });
        let replay_best = h.results().last().expect("case just ran").min();
        h.bench("compiled/decode_gzip/compiled", || {
            drain(compiled.replay(), n, &mut out);
        });
        let compiled_best = h.results().last().expect("case just ran").min();
        println!(
            "\ncompiled/decode_gzip         {n:>9} records     decode-stage speedup {:.2}x",
            replay_best.as_secs_f64() / compiled_best.as_secs_f64(),
        );
    }
    let cases: [(&str, &str, usize, usize); 3] = [
        ("gzip", "16cfg_2active", 16, 2),
        ("gzip", "16cfg_16active", 16, 16),
        ("djpeg", "16cfg_16active", 16, 16),
    ];
    let mut rows = Vec::new();
    for (workload, shape, configured, active) in cases {
        let w = clustered_workloads::by_name(workload).expect("known workload");
        let trace = capture_for(&w, WARMUP, INSTRUCTIONS);
        let compiled = trace.compile();
        // Deterministic simulation: one untimed run pins the cycle
        // count every timed sample repeats — and the two paths must
        // agree on it, or the comparison is meaningless.
        let cycles = run_replay(&trace, configured, active).cycles;
        assert_eq!(
            cycles,
            run_compiled(&compiled, configured, active).cycles,
            "compiled path must simulate the identical schedule"
        );
        h.bench(&format!("compiled/{workload}_{shape}/replay"), || {
            black_box(run_replay(&trace, configured, active));
        });
        let replay_best = h.results().last().expect("case just ran").min();
        h.bench(&format!("compiled/{workload}_{shape}/compiled"), || {
            black_box(run_compiled(&compiled, configured, active));
        });
        let compiled_best = h.results().last().expect("case just ran").min();
        rows.push((workload, shape, cycles, replay_best, compiled_best));
    }

    println!();
    for (workload, shape, cycles, replay, compiled) in rows {
        let r_rate = cycles as f64 / replay.as_secs_f64();
        let c_rate = cycles as f64 / compiled.as_secs_f64();
        println!(
            "compiled/{workload}_{shape:<16} {cycles:>9} sim-cycles  \
             replay {r_rate:>10.0} c/s  compiled {c_rate:>10.0} c/s  ({:.2}x)",
            c_rate / r_rate,
        );
    }
    h.finish();
}
