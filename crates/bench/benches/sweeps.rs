//! Performance benches for the sweep executor: the full fig3-style
//! 9-workload × 5-configuration grid, before (serial loop re-emulating
//! every point) versus after (shared captures, serial replay, parallel
//! replay).
//!
//! The `before` case is the exact code path the experiment binaries
//! used prior to the sweep executor; the deltas between the three
//! cases are the evidence committed to `results/BENCH_sweeps.json`
//! (schema in EXPERIMENTS.md). Speedup of the parallel case over the
//! serial-replay case scales with host cores; the replay cases beat
//! `before` even on one core by eliminating per-point re-emulation.

use clustered_bench::harness::Harness;
use clustered_bench::run_experiment;
use clustered_bench::sweep::{capture_for, run_sweep, run_sweep_serial, SweepPoint};
use clustered_sim::{FixedPolicy, SimConfig};
use clustered_workloads::CapturedTrace;
use std::hint::black_box;

const INSTRUCTIONS: u64 = 20_000;
const WARMUP: u64 = 2_000;
const COUNTS: [usize; 4] = [2, 4, 8, 16];

fn grid_points(traces: &[(clustered_workloads::Workload, CapturedTrace)]) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for (w, trace) in traces {
        points.push(SweepPoint::new(
            format!("{}/mono", w.name()),
            trace,
            SimConfig::monolithic(),
            || Box::new(FixedPolicy::new(1)),
            WARMUP,
            INSTRUCTIONS,
        ));
        for &n in &COUNTS {
            points.push(SweepPoint::new(
                format!("{}/{n}", w.name()),
                trace,
                SimConfig::default(),
                move || Box::new(FixedPolicy::new(n)),
                WARMUP,
                INSTRUCTIONS,
            ));
        }
    }
    points
}

fn main() {
    let mut h = Harness::from_env("sweeps");
    let workloads = clustered_workloads::all();

    // Capture cost alone: one emulation pass per workload. Everything
    // the replay cases save, they save relative to paying this 45×.
    h.bench("sweep/capture_9_workloads", || {
        for w in &workloads {
            black_box(capture_for(w, WARMUP, INSTRUCTIONS).len());
        }
    });

    // Before: the old serial loop, re-emulating the workload for every
    // one of the 45 grid points.
    h.bench("sweep/fig3_grid_before_serial_reemulate", || {
        for w in &workloads {
            black_box(run_experiment(
                w,
                SimConfig::monolithic(),
                Box::new(FixedPolicy::new(1)),
                WARMUP,
                INSTRUCTIONS,
            ));
            for &n in &COUNTS {
                black_box(run_experiment(
                    w,
                    SimConfig::default(),
                    Box::new(FixedPolicy::new(n)),
                    WARMUP,
                    INSTRUCTIONS,
                ));
            }
        }
    });

    // After, one thread: capture (timed — this is the end-to-end cost
    // a binary pays) plus serial replay of all 45 points.
    h.bench("sweep/fig3_grid_replay_serial", || {
        let traces: Vec<_> = workloads
            .iter()
            .map(|w| (w.clone(), capture_for(w, WARMUP, INSTRUCTIONS)))
            .collect();
        black_box(run_sweep_serial(&grid_points(&traces)));
    });

    // After, worker pool (`CLUSTERED_JOBS` / available parallelism):
    // what the ported binaries actually run.
    h.bench("sweep/fig3_grid_replay_parallel", || {
        let traces: Vec<_> = workloads
            .iter()
            .map(|w| (w.clone(), capture_for(w, WARMUP, INSTRUCTIONS)))
            .collect();
        black_box(run_sweep(&grid_points(&traces)));
    });

    h.finish();
}
