//! Quiescence bench: simulator wall-clock throughput when most of a
//! wide machine is disabled.
//!
//! The paper's adaptive policies spend long stretches at 2–4 active
//! clusters on a 16-cluster die, so the cycle loop's cost on a
//! wide-but-idle configuration dominates experiment latency. The
//! headline comparison is `16cfg_2active` (16 clusters configured,
//! policy pins 2 active — 14 clusters quiescent every cycle) against
//! `2cfg_2active` (the same machine configured narrow, the lower
//! bound); `16cfg_16active` guards against regressions on the fully
//! active path. Deltas are committed to `results/BENCH_shard.json`
//! (schema in EXPERIMENTS.md), which also records the pre-refactor
//! baseline the ≥1.5× quiescence win is measured against.

use clustered_bench::harness::Harness;
use clustered_bench::run_stream;
use clustered_bench::sweep::capture_for;
use clustered_sim::{FixedPolicy, SimConfig, SimStats, SteeringKind};
use clustered_workloads::CapturedTrace;
use std::hint::black_box;

const WARMUP: u64 = 5_000;
const INSTRUCTIONS: u64 = 100_000;

fn run(trace: &CapturedTrace, configured: usize, active: usize) -> SimStats {
    let mut cfg = SimConfig::default();
    cfg.clusters.count = configured;
    run_stream(
        trace.replay(),
        cfg,
        Box::new(FixedPolicy::new(active)),
        SteeringKind::default(),
        WARMUP,
        INSTRUCTIONS,
    )
}

fn main() {
    let mut h = Harness::from_env("shard");
    let gzip = clustered_workloads::by_name("gzip").expect("gzip workload");
    let trace = capture_for(&gzip, WARMUP, INSTRUCTIONS);

    let cases: [(&str, usize, usize); 3] = [
        ("shard/16cfg_2active", 16, 2),
        ("shard/2cfg_2active", 2, 2),
        ("shard/16cfg_16active", 16, 16),
    ];
    let mut rates = Vec::new();
    for (name, configured, active) in cases {
        // The simulation is deterministic, so one untimed run pins the
        // simulated-cycle count every timed sample repeats.
        let cycles = run(&trace, configured, active).cycles;
        h.bench(name, || {
            black_box(run(&trace, configured, active));
        });
        let best = h.results().last().expect("case just ran").min();
        rates.push((name, cycles, cycles as f64 / best.as_secs_f64()));
    }

    println!();
    for (name, cycles, rate) in rates {
        println!("{name:<44} {cycles:>9} sim-cycles  {:>10.0} sim-cycles/s", rate);
    }
    h.finish();
}
