//! Intra-run parallelism bench: whole-loop wall-clock of one
//! simulation at 0 (sequential oracle), 1 (batched phases inline), 2,
//! and 4 intra-run threads, on the widest machine the model has — the
//! decentralized cache with all 16 clusters configured and active.
//!
//! The arms are *interleaved* (sample 0 of every arm, then sample 1 of
//! every arm, …) so ambient host noise — thermal drift, a background
//! compile — lands on all arms alike instead of biasing whichever arm
//! ran last. Every arm must simulate the exact same cycle count: the
//! thread pool is a host-execution strategy, and a divergence here is
//! a correctness bug, not a perf result.
//!
//! Honest expectations, recorded up front: the conservative-sync
//! design pays two spin-barrier round-trips per simulated cycle
//! (select, gather) against a sequential loop that spends a few
//! hundred nanoseconds per cycle in total. Amdahl plus barrier cost
//! means flat-to-slower results at small cluster counts are the
//! *expected* outcome; the bench exists to measure, not to flatter.
//! Results go to `results/BENCH_parallel.json` ("cases" schema, gated
//! by `bench-cmp` in `scripts/ci.sh`).

use clustered_bench::sweep::capture_for;
use clustered_sim::{
    CacheModel, FixedPolicy, HostProfiler, Processor, SimConfig, SteeringKind,
    DEFAULT_SAMPLE_INTERVAL,
};
use clustered_stats::Json;
use clustered_workloads::CapturedTrace;

const WARMUP: u64 = 5_000;
const INSTRUCTIONS: u64 = 100_000;
/// The intra-run thread axis; 0 is the sequential oracle loop.
const ARMS: [usize; 4] = [0, 1, 2, 4];

/// One run of the 16-configured/16-active decentralized case at the
/// given intra-run thread count: (whole-loop ns, measured sim cycles).
fn timed_run(trace: &CapturedTrace, intra: usize) -> (u64, u64) {
    let mut cfg = SimConfig::default();
    cfg.cache.model = CacheModel::Decentralized;
    cfg.intra_jobs = intra;
    let mut cpu = Processor::with_observer(
        cfg,
        trace.compile().replay(),
        Box::new(FixedPolicy::new(16)),
        SteeringKind::default(),
        HostProfiler::new(DEFAULT_SAMPLE_INTERVAL),
    )
    .expect("valid bench configuration");
    cpu.run(WARMUP).expect("simulator stalled in warm-up");
    let cycles_before = cpu.stats().cycles;
    cpu.observer_mut().reset();
    cpu.run(INSTRUCTIONS).expect("simulator stalled");
    let cycles = cpu.stats().cycles - cycles_before;
    (cpu.observer().loop_nanos(), cycles)
}

fn summarize(mut ns: Vec<u64>) -> (u64, u64, u64) {
    ns.sort_unstable();
    let min = ns[0];
    let median = ns[ns.len() / 2];
    let mean = ns.iter().sum::<u64>() / ns.len() as u64;
    (min, median, mean)
}

fn main() {
    let samples: usize = std::env::var("CLUSTERED_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|n: usize| n.max(1))
        .unwrap_or(10);
    println!("bench suite `parallel`: {samples} samples per arm, interleaved\n");

    let w = clustered_workloads::by_name("gzip").expect("built-in workload");
    let trace = capture_for(&w, WARMUP, INSTRUCTIONS);

    // Warm-up pass per arm (first-touch costs are not what we track).
    for &intra in &ARMS {
        let _ = timed_run(&trace, intra);
    }

    let mut loop_ns: Vec<Vec<u64>> = ARMS.iter().map(|_| Vec::with_capacity(samples)).collect();
    let mut cycles_pin: Option<u64> = None;
    for _ in 0..samples {
        for (a, &intra) in ARMS.iter().enumerate() {
            let (ns, cycles) = timed_run(&trace, intra);
            loop_ns[a].push(ns);
            // The hard acceptance bar: every arm, every sample, the
            // same simulated schedule.
            match cycles_pin {
                None => cycles_pin = Some(cycles),
                Some(c) => assert_eq!(
                    c, cycles,
                    "intra_jobs={intra}: schedule diverged from the sequential arm"
                ),
            }
        }
    }

    let seq_min = *loop_ns[0].iter().min().expect("at least one sample");
    println!(
        "{:<40} {:>12} {:>12} {:>12} {:>9}",
        "case (whole-loop ns)", "min", "median", "mean", "speedup"
    );
    let mut cases = Vec::new();
    for (a, &intra) in ARMS.iter().enumerate() {
        let name = format!("parallel/gzip_dec_16of16_intra{intra}");
        let (min, median, mean) = summarize(loop_ns[a].clone());
        println!(
            "{name:<40} {min:>12} {median:>12} {mean:>12} {:>8.2}x",
            seq_min as f64 / min.max(1) as f64
        );
        cases.push(
            Json::object()
                .set("name", name.as_str())
                .set("min_ns", min)
                .set("median_ns", median)
                .set("mean_ns", mean)
                .set("samples", samples),
        );
    }

    let doc = Json::object()
        .set("suite", "parallel")
        .set("sim_cycles", Json::object().set("gzip_dec_16of16", cycles_pin.unwrap_or(0)))
        .set("cases", Json::Arr(cases));
    if let Ok(path) = std::env::var("CLUSTERED_BENCH_JSON") {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, doc.to_string_pretty()) {
            Ok(()) => println!("\nwrote {path}"),
            Err(e) => eprintln!("\ncannot write {path}: {e}"),
        }
    }
}
