//! Host-profiler overhead bench: the same run with the profiler off
//! (`NullObserver`, the default every experiment uses) and on
//! (`HostProfiler` at its default sample interval).
//!
//! The `profiler_off` case is the zero-cost contract: the compile-time
//! `WANTS_HOST_PROFILE` gate must keep it at the pre-profiler
//! throughput recorded in the `results/BENCH_*.json` trajectory
//! (`bench-cmp` in `scripts/ci.sh` enforces that). The `profiler_on`
//! case quantifies what turning the instrumentation on costs — two
//! `Instant` reads per stage per cycle — so regressions in the
//! profiled path itself are visible too. Deltas go to
//! `results/BENCH_hostprof.json` (schema in EXPERIMENTS.md).

use clustered_bench::harness::Harness;
use clustered_bench::run_stream;
use clustered_bench::sweep::capture_for;
use clustered_sim::{
    FixedPolicy, HostProfiler, Processor, SimConfig, SimStats, SteeringKind,
    DEFAULT_SAMPLE_INTERVAL,
};
use clustered_workloads::CapturedTrace;
use std::hint::black_box;

const WARMUP: u64 = 5_000;
const INSTRUCTIONS: u64 = 100_000;

fn run_off(trace: &CapturedTrace) -> SimStats {
    run_stream(
        trace.replay(),
        SimConfig::default(),
        Box::new(FixedPolicy::new(8)),
        SteeringKind::default(),
        WARMUP,
        INSTRUCTIONS,
    )
}

fn run_on(trace: &CapturedTrace) -> SimStats {
    let mut cpu = Processor::with_observer(
        SimConfig::default(),
        trace.replay(),
        Box::new(FixedPolicy::new(8)),
        SteeringKind::default(),
        HostProfiler::new(DEFAULT_SAMPLE_INTERVAL),
    )
    .expect("valid bench configuration");
    cpu.run(WARMUP).expect("simulator stalled in warm-up");
    let before = *cpu.stats();
    cpu.run(INSTRUCTIONS).expect("simulator stalled");
    cpu.stats().delta_since(&before)
}

fn main() {
    let mut h = Harness::from_env("hostprof");
    let gzip = clustered_workloads::by_name("gzip").expect("gzip workload");
    let trace = capture_for(&gzip, WARMUP, INSTRUCTIONS);

    // The simulation is deterministic, and the profiler must not
    // perturb it: pin that here before timing anything.
    let off = run_off(&trace);
    let on = run_on(&trace);
    assert_eq!(off, on, "HostProfiler must not change simulation statistics");

    h.bench("hostprof/profiler_off", || {
        black_box(run_off(&trace));
    });
    let off_best = h.results().last().expect("case just ran").min();
    h.bench("hostprof/profiler_on", || {
        black_box(run_on(&trace));
    });
    let on_best = h.results().last().expect("case just ran").min();

    println!();
    println!(
        "profiler off {:>10.0} sim-cycles/s   on {:>10.0} sim-cycles/s   overhead {:.2}x",
        off.cycles as f64 / off_best.as_secs_f64(),
        on.cycles as f64 / on_best.as_secs_f64(),
        on_best.as_secs_f64() / off_best.as_secs_f64()
    );
    h.finish();
}
