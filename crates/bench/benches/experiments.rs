//! Criterion benches: one group per table/figure of the paper, each
//! exercising the same code path as the corresponding experiment
//! binary at a reduced instruction count, plus substrate throughput
//! benches (assembler, emulator, simulator).
//!
//! The experiment binaries in `src/bin/` regenerate the full
//! tables/figures; these benches track the *performance* of the
//! reproduction itself.

use clustered_bench::{run_experiment, run_experiment_with_steering};
use clustered_core::phase::MetricsRecorder;
use clustered_core::{FineGrain, IntervalDistantIlp, IntervalExplore};
use clustered_sim::{CacheModel, FixedPolicy, Processor, SimConfig, SteeringKind, Topology};
use clustered_workloads::by_name;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const INSTRUCTIONS: u64 = 20_000;
const WARMUP: u64 = 2_000;

fn bench_substrates(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrates");
    let gzip = by_name("gzip").expect("workload");
    g.bench_function("assemble_gzip_kernel", |b| {
        b.iter(|| black_box(by_name("gzip").unwrap()));
    });
    g.bench_function("emulate_20k", |b| {
        b.iter(|| {
            let mut m = gzip.machine();
            m.run_to_halt(INSTRUCTIONS).unwrap();
            black_box(m.instructions_executed())
        });
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_static");
    let gzip = by_name("gzip").expect("workload");
    for clusters in [4usize, 16] {
        g.bench_function(format!("gzip_{clusters}_clusters"), |b| {
            b.iter(|| {
                black_box(run_experiment(
                    &gzip,
                    SimConfig::default(),
                    Box::new(FixedPolicy::new(clusters)),
                    WARMUP,
                    INSTRUCTIONS,
                ))
            });
        });
    }
    g.bench_function("gzip_monolithic_table3", |b| {
        b.iter(|| {
            black_box(run_experiment(
                &gzip,
                SimConfig::monolithic(),
                Box::new(FixedPolicy::new(1)),
                WARMUP,
                INSTRUCTIONS,
            ))
        });
    });
    g.finish();
}

fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_instability");
    let gzip = by_name("gzip").expect("workload");
    g.bench_function("metrics_recorder", |b| {
        b.iter(|| {
            let (recorder, records) = MetricsRecorder::new(16, 1_000);
            let stream = gzip.trace().map(Result::unwrap);
            let mut cpu =
                Processor::new(SimConfig::default(), stream, Box::new(recorder)).unwrap();
            cpu.run(INSTRUCTIONS).unwrap();
            let n = records.borrow().len();
            black_box(n)
        });
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_interval_schemes");
    let gzip = by_name("gzip").expect("workload");
    g.bench_function("interval_explore", |b| {
        b.iter(|| {
            black_box(run_experiment(
                &gzip,
                SimConfig::default(),
                Box::new(IntervalExplore::default()),
                WARMUP,
                INSTRUCTIONS,
            ))
        });
    });
    g.bench_function("interval_distant_1k", |b| {
        b.iter(|| {
            black_box(run_experiment(
                &gzip,
                SimConfig::default(),
                Box::new(IntervalDistantIlp::with_interval(1_000)),
                WARMUP,
                INSTRUCTIONS,
            ))
        });
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_finegrain");
    let crafty = by_name("crafty").expect("workload");
    g.bench_function("branch_table", |b| {
        b.iter(|| {
            black_box(run_experiment(
                &crafty,
                SimConfig::default(),
                Box::new(FineGrain::branch_policy()),
                WARMUP,
                INSTRUCTIONS,
            ))
        });
    });
    g.bench_function("subroutine", |b| {
        b.iter(|| {
            black_box(run_experiment(
                &crafty,
                SimConfig::default(),
                Box::new(FineGrain::subroutine_policy()),
                WARMUP,
                INSTRUCTIONS,
            ))
        });
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_decentralized");
    let swim = by_name("swim").expect("workload");
    let mut cfg = SimConfig::default();
    cfg.cache.model = CacheModel::Decentralized;
    g.bench_function("decentralized_16", |b| {
        b.iter(|| {
            black_box(run_experiment(
                &swim,
                cfg,
                Box::new(FixedPolicy::new(16)),
                WARMUP,
                INSTRUCTIONS,
            ))
        });
    });
    g.bench_function("decentralized_explore", |b| {
        b.iter(|| {
            black_box(run_experiment(
                &swim,
                cfg,
                Box::new(IntervalExplore::default()),
                WARMUP,
                INSTRUCTIONS,
            ))
        });
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_grid");
    let swim = by_name("swim").expect("workload");
    let mut cfg = SimConfig::default();
    cfg.interconnect.topology = Topology::Grid;
    g.bench_function("grid_16", |b| {
        b.iter(|| {
            black_box(run_experiment(
                &swim,
                cfg,
                Box::new(FixedPolicy::new(16)),
                WARMUP,
                INSTRUCTIONS,
            ))
        });
    });
    g.finish();
}

fn bench_steering(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_steering");
    let gzip = by_name("gzip").expect("workload");
    for (name, kind) in [
        ("producer", SteeringKind::default()),
        ("mod_n", SteeringKind::ModN(4)),
        ("first_fit", SteeringKind::FirstFit),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(run_experiment_with_steering(
                    &gzip,
                    SimConfig::default(),
                    Box::new(FixedPolicy::new(16)),
                    kind,
                    WARMUP,
                    INSTRUCTIONS,
                ))
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_substrates, bench_fig3, bench_table4, bench_fig5, bench_fig6,
              bench_fig7, bench_fig8, bench_steering
}
criterion_main!(benches);
