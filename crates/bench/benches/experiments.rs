//! Performance benches: one group per table/figure of the paper, each
//! exercising the same code path as the corresponding experiment
//! binary at a reduced instruction count, plus substrate throughput
//! benches (assembler, emulator, simulator).
//!
//! The experiment binaries in `src/bin/` regenerate the full
//! tables/figures; these benches track the *performance* of the
//! reproduction itself. Implemented on `std::time::Instant` (the
//! offline build environment cannot fetch criterion); invoke with
//! `cargo bench` — each case reports min/median/mean wall time over a
//! fixed number of samples.

use clustered_bench::harness::Harness;
use clustered_bench::{run_experiment, run_experiment_with_steering};
use clustered_core::phase::MetricsRecorder;
use clustered_core::{FineGrain, IntervalDistantIlp, IntervalExplore};
use clustered_sim::{CacheModel, FixedPolicy, Processor, SimConfig, SteeringKind, Topology};
use clustered_workloads::by_name;
use std::hint::black_box;

const INSTRUCTIONS: u64 = 20_000;
const WARMUP: u64 = 2_000;

fn main() {
    let mut h = Harness::from_env("experiments");

    let gzip = by_name("gzip").expect("workload");
    h.bench("substrates/assemble_gzip_kernel", || {
        black_box(by_name("gzip").unwrap());
    });
    h.bench("substrates/emulate_20k", || {
        let mut m = gzip.machine();
        m.run_to_halt(INSTRUCTIONS).unwrap();
        black_box(m.instructions_executed());
    });

    for clusters in [4usize, 16] {
        h.bench(&format!("fig3_static/gzip_{clusters}_clusters"), || {
            black_box(run_experiment(
                &gzip,
                SimConfig::default(),
                Box::new(FixedPolicy::new(clusters)),
                WARMUP,
                INSTRUCTIONS,
            ));
        });
    }
    h.bench("fig3_static/gzip_monolithic_table3", || {
        black_box(run_experiment(
            &gzip,
            SimConfig::monolithic(),
            Box::new(FixedPolicy::new(1)),
            WARMUP,
            INSTRUCTIONS,
        ));
    });

    h.bench("table4_instability/metrics_recorder", || {
        let (recorder, records) = MetricsRecorder::new(16, 1_000);
        let stream = gzip.trace().map(Result::unwrap);
        let mut cpu = Processor::new(SimConfig::default(), stream, Box::new(recorder)).unwrap();
        cpu.run(INSTRUCTIONS).unwrap();
        black_box(records.borrow().len());
    });

    h.bench("fig5_interval_schemes/interval_explore", || {
        black_box(run_experiment(
            &gzip,
            SimConfig::default(),
            Box::new(IntervalExplore::default()),
            WARMUP,
            INSTRUCTIONS,
        ));
    });
    h.bench("fig5_interval_schemes/interval_distant_1k", || {
        black_box(run_experiment(
            &gzip,
            SimConfig::default(),
            Box::new(IntervalDistantIlp::with_interval(1_000)),
            WARMUP,
            INSTRUCTIONS,
        ));
    });

    let crafty = by_name("crafty").expect("workload");
    h.bench("fig6_finegrain/branch_table", || {
        black_box(run_experiment(
            &crafty,
            SimConfig::default(),
            Box::new(FineGrain::branch_policy()),
            WARMUP,
            INSTRUCTIONS,
        ));
    });
    h.bench("fig6_finegrain/subroutine", || {
        black_box(run_experiment(
            &crafty,
            SimConfig::default(),
            Box::new(FineGrain::subroutine_policy()),
            WARMUP,
            INSTRUCTIONS,
        ));
    });

    let swim = by_name("swim").expect("workload");
    let mut decentralized = SimConfig::default();
    decentralized.cache.model = CacheModel::Decentralized;
    h.bench("fig7_decentralized/decentralized_16", || {
        black_box(run_experiment(
            &swim,
            decentralized,
            Box::new(FixedPolicy::new(16)),
            WARMUP,
            INSTRUCTIONS,
        ));
    });
    h.bench("fig7_decentralized/decentralized_explore", || {
        black_box(run_experiment(
            &swim,
            decentralized,
            Box::new(IntervalExplore::default()),
            WARMUP,
            INSTRUCTIONS,
        ));
    });

    let mut grid = SimConfig::default();
    grid.interconnect.topology = Topology::Grid;
    h.bench("fig8_grid/grid_16", || {
        black_box(run_experiment(
            &swim,
            grid,
            Box::new(FixedPolicy::new(16)),
            WARMUP,
            INSTRUCTIONS,
        ));
    });

    for (name, kind) in [
        ("producer", SteeringKind::default()),
        ("mod_n", SteeringKind::ModN(4)),
        ("first_fit", SteeringKind::FirstFit),
    ] {
        h.bench(&format!("ablation_steering/{name}"), || {
            black_box(run_experiment_with_steering(
                &gzip,
                SimConfig::default(),
                Box::new(FixedPolicy::new(16)),
                kind,
                WARMUP,
                INSTRUCTIONS,
            ));
        });
    }

    h.finish();
}
