//! Backend hot-loop bench: combined issue + dispatch + event-drain
//! stage wall-clock per run, measured with the host profiler's stage
//! timers (the same buckets `clustered perf` reports).
//!
//! PR 7 showed ~450 ns/instruction of pipeline work split roughly
//! event-drain 29% / dispatch 25% / issue 23%, so this bench tracks
//! that combined backend share directly instead of end-to-end wall
//! time: frontend or cache changes cannot mask a backend regression
//! and vice versa. Each case runs a warm-up window, resets the
//! profiler, runs the measured window, and records the summed
//! event_drain + issue + dispatch nanoseconds; min/median/mean over
//! the samples go to `results/BENCH_backend.json` (schema in
//! EXPERIMENTS.md), gated by `bench-cmp` in `scripts/ci.sh`.
//!
//! The simulated schedule is pinned: every sample of a case must
//! produce identical cycle counts (the profiler only reads state), so
//! a data-structure change that alters the schedule fails here before
//! it ever reaches the 360-point shard oracle.

use clustered_bench::sweep::capture_for;
use clustered_sim::{
    CacheModel, FixedPolicy, HostProfiler, HostStage, Processor, SimConfig, SteeringKind,
    DEFAULT_SAMPLE_INTERVAL,
};
use clustered_stats::Json;
use clustered_workloads::CapturedTrace;

const WARMUP: u64 = 5_000;
const INSTRUCTIONS: u64 = 100_000;

/// One profiled run: returns (combined backend ns, whole-loop ns,
/// simulated cycles in the measured window).
fn profiled_run(trace: &CapturedTrace, model: CacheModel, active: usize) -> (u64, u64, u64) {
    let mut cfg = SimConfig::default();
    cfg.cache.model = model;
    let mut cpu = Processor::with_observer(
        cfg,
        trace.compile().replay(),
        Box::new(FixedPolicy::new(active)),
        SteeringKind::default(),
        HostProfiler::new(DEFAULT_SAMPLE_INTERVAL),
    )
    .expect("valid bench configuration");
    cpu.run(WARMUP).expect("simulator stalled in warm-up");
    let cycles_before = cpu.stats().cycles;
    cpu.observer_mut().reset();
    cpu.run(INSTRUCTIONS).expect("simulator stalled");
    let cycles = cpu.stats().cycles - cycles_before;
    let nanos = cpu.observer().stage_nanos();
    let backend = nanos[HostStage::EventDrain as usize]
        + nanos[HostStage::Issue as usize]
        + nanos[HostStage::Dispatch as usize];
    (backend, cpu.observer().loop_nanos(), cycles)
}

struct Case {
    name: &'static str,
    workload: &'static str,
    model: CacheModel,
    active: usize,
}

const CASES: [Case; 3] = [
    // The paper's baseline machine, cache centralized, 8 of 16 active.
    Case { name: "gzip_cen_8of16", workload: "gzip", model: CacheModel::Centralized, active: 8 },
    // All 16 clusters busy: widest issue/wakeup fan-out.
    Case { name: "gzip_dec_16of16", workload: "gzip", model: CacheModel::Decentralized, active: 16 },
    // FP-heavy stream: exercises the FP FU groups and both domains.
    Case { name: "swim_dec_8of16", workload: "swim", model: CacheModel::Decentralized, active: 8 },
];

fn summarize(mut ns: Vec<u64>) -> (u64, u64, u64) {
    ns.sort_unstable();
    let min = ns[0];
    let median = ns[ns.len() / 2];
    let mean = ns.iter().sum::<u64>() / ns.len() as u64;
    (min, median, mean)
}

fn main() {
    let samples: usize = std::env::var("CLUSTERED_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|n: usize| n.max(1))
        .unwrap_or(10);
    println!("bench suite `backend`: {samples} samples per case\n");
    println!("{:<44} {:>12} {:>12} {:>12}", "case (backend-stage ns)", "min", "median", "mean");

    let mut cases = Vec::new();
    let mut sim_cycles = Json::object();
    for case in &CASES {
        let w = clustered_workloads::by_name(case.workload).expect("built-in workload");
        let trace = capture_for(&w, WARMUP, INSTRUCTIONS);
        let mut backend = Vec::with_capacity(samples);
        let mut whole = Vec::with_capacity(samples);
        let mut cycles_pin = None;
        // Warm-up run (first-touch costs are not what we track).
        let _ = profiled_run(&trace, case.model, case.active);
        for _ in 0..samples {
            let (b, l, cycles) = profiled_run(&trace, case.model, case.active);
            backend.push(b);
            whole.push(l);
            // The profiler must not perturb the schedule: all samples
            // of one case simulate the exact same cycles.
            match cycles_pin {
                None => cycles_pin = Some(cycles),
                Some(c) => assert_eq!(c, cycles, "{}: schedule not deterministic", case.name),
            }
        }
        let loop_min = *whole.iter().min().expect("at least one sample");
        let (min, median, mean) = summarize(backend);
        println!(
            "backend/{:<36} {min:>12} {median:>12} {mean:>12}   ({:.0}% of loop)",
            case.name,
            100.0 * min as f64 / loop_min.max(1) as f64
        );
        sim_cycles = sim_cycles.set(case.name, cycles_pin.unwrap_or(0));
        cases.push(
            Json::object()
                .set("name", format!("backend/{}", case.name).as_str())
                .set("min_ns", min)
                .set("median_ns", median)
                .set("mean_ns", mean)
                .set("samples", samples),
        );
    }

    let doc = Json::object()
        .set("suite", "backend")
        .set("sim_cycles", sim_cycles)
        .set("cases", Json::Arr(cases));
    if let Ok(path) = std::env::var("CLUSTERED_BENCH_JSON") {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, doc.to_string_pretty()) {
            Ok(()) => println!("\nwrote {path}"),
            Err(e) => eprintln!("\ncannot write {path}: {e}"),
        }
    }
}
