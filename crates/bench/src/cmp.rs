//! Benchmark regression comparison: the logic behind the `bench-cmp`
//! binary, which diffs two harness JSON documents (the
//! `BENCH_*.json` schema written via `CLUSTERED_BENCH_JSON`) with a
//! noise threshold.
//!
//! The committed `results/BENCH_*.json` trajectory records the repo's
//! performance history; this module turns it into an enforceable
//! contract. `scripts/ci.sh` runs `bench-cmp` so a change that slows a
//! benchmarked case past the threshold fails the build instead of
//! silently eroding the PR-5 sharding wins.

use clustered_stats::{json, Json, Provenance};

/// Default relative slowdown tolerated before a case counts as a
/// regression: generous because CI boxes are noisy and smoke runs use
/// few samples, while genuine algorithmic regressions are usually far
/// larger.
pub const DEFAULT_THRESHOLD: f64 = 0.25;

/// Which per-case statistic to compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CmpMetric {
    /// `min_ns` — the noise-robust default (matches the repo's bench
    /// reporting convention).
    #[default]
    Min,
    /// `median_ns`.
    Median,
    /// `mean_ns`.
    Mean,
}

impl CmpMetric {
    /// Parses `min`/`median`/`mean`.
    pub fn from_arg(s: &str) -> Result<CmpMetric, String> {
        match s {
            "min" => Ok(CmpMetric::Min),
            "median" => Ok(CmpMetric::Median),
            "mean" => Ok(CmpMetric::Mean),
            other => Err(format!("unknown metric `{other}` (expected min, median, or mean)")),
        }
    }

    /// The JSON key this metric reads from each case.
    pub fn key(self) -> &'static str {
        match self {
            CmpMetric::Min => "min_ns",
            CmpMetric::Median => "median_ns",
            CmpMetric::Mean => "mean_ns",
        }
    }
}

/// One case present in both documents.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseDelta {
    /// Case name.
    pub name: String,
    /// Metric value in the baseline document, nanoseconds.
    pub baseline_ns: u64,
    /// Metric value in the current document, nanoseconds.
    pub current_ns: u64,
}

impl CaseDelta {
    /// `current / baseline`; >1 is slower. A zero baseline compares as
    /// 1.0 (no meaningful ratio from a 0 ns measurement).
    pub fn ratio(&self) -> f64 {
        if self.baseline_ns == 0 {
            1.0
        } else {
            self.current_ns as f64 / self.baseline_ns as f64
        }
    }
}

/// The outcome of comparing two harness documents.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Relative slowdown tolerated before a case regresses.
    pub threshold: f64,
    /// The compared statistic.
    pub metric: CmpMetric,
    /// Cases present in both documents, in baseline order.
    pub rows: Vec<CaseDelta>,
    /// Baseline cases absent from the current document — a dropped
    /// benchmark hides regressions, so this fails the comparison.
    pub missing: Vec<String>,
    /// Current cases absent from the baseline (informational only).
    pub added: Vec<String>,
    /// The baseline document's `provenance` block, when it carries
    /// one (harness documents written before the provenance layer do
    /// not — the comparison still works, the report just omits it).
    pub baseline_provenance: Option<Provenance>,
    /// The current document's `provenance` block, when present.
    pub current_provenance: Option<Provenance>,
}

impl Comparison {
    /// Cases slower than `1 + threshold` times their baseline.
    pub fn regressions(&self) -> Vec<&CaseDelta> {
        self.rows.iter().filter(|r| r.ratio() > 1.0 + self.threshold).collect()
    }

    /// True when nothing regressed and no baseline case disappeared.
    pub fn passed(&self) -> bool {
        self.regressions().is_empty() && self.missing.is_empty()
    }

    /// A human-readable report, one line per case plus a verdict.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench-cmp: metric {} threshold {:.0}%",
            self.metric.key(),
            self.threshold * 100.0
        );
        for r in &self.rows {
            let ratio = r.ratio();
            let verdict = if ratio > 1.0 + self.threshold { "REGRESSED" } else { "ok" };
            let _ = writeln!(
                out,
                "  {:<40} {:>12} -> {:>12} ns  {:>7.3}x  {}",
                r.name, r.baseline_ns, r.current_ns, ratio, verdict
            );
        }
        for name in &self.missing {
            let _ = writeln!(out, "  {name:<40} MISSING from current results");
        }
        for name in &self.added {
            let _ = writeln!(out, "  {name:<40} new case (not compared)");
        }
        let _ = writeln!(out, "bench-cmp: {}", if self.passed() { "PASS" } else { "FAIL" });
        out
    }

    /// The report as one JSON document.
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::object()
                    .set("name", r.name.as_str())
                    .set("baseline_ns", r.baseline_ns)
                    .set("current_ns", r.current_ns)
                    .set("ratio", r.ratio())
                    .set("regressed", r.ratio() > 1.0 + self.threshold)
            })
            .collect();
        let missing: Vec<Json> = self.missing.iter().map(|n| Json::from(n.as_str())).collect();
        let added: Vec<Json> = self.added.iter().map(|n| Json::from(n.as_str())).collect();
        let prov = |p: &Option<Provenance>| match p {
            Some(p) => p.to_json(),
            None => Json::Null,
        };
        Json::object()
            .set("metric", self.metric.key())
            .set("threshold", self.threshold)
            .set("cases", Json::Arr(rows))
            .set("missing", Json::Arr(missing))
            .set("added", Json::Arr(added))
            .set("baseline_provenance", prov(&self.baseline_provenance))
            .set("current_provenance", prov(&self.current_provenance))
            .set("passed", self.passed())
    }
}

/// Extracts `(name, metric)` pairs from a harness document's `cases`
/// array, in document order.
fn cases_of(doc: &Json, metric: CmpMetric, which: &str) -> Result<Vec<(String, u64)>, String> {
    let cases = doc
        .get("cases")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{which}: not a bench harness document (no `cases` array)"))?;
    let mut out = Vec::with_capacity(cases.len());
    for (i, case) in cases.iter().enumerate() {
        let name = case
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{which}: case {i} has no `name`"))?;
        let value = case
            .get(metric.key())
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{which}: case `{name}` has no `{}`", metric.key()))?;
        out.push((name.to_string(), value));
    }
    Ok(out)
}

/// Compares two parsed harness documents.
///
/// # Errors
///
/// Returns a message when either document lacks the harness schema
/// (`cases` array of objects with `name` and the metric key).
pub fn compare_docs(
    baseline: &Json,
    current: &Json,
    metric: CmpMetric,
    threshold: f64,
) -> Result<Comparison, String> {
    let base = cases_of(baseline, metric, "baseline")?;
    let cur = cases_of(current, metric, "current")?;
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for (name, baseline_ns) in &base {
        match cur.iter().find(|(n, _)| n == name) {
            Some(&(_, current_ns)) => {
                rows.push(CaseDelta { name: name.clone(), baseline_ns: *baseline_ns, current_ns })
            }
            None => missing.push(name.clone()),
        }
    }
    let added = cur
        .iter()
        .filter(|(n, _)| !base.iter().any(|(b, _)| b == n))
        .map(|(n, _)| n.clone())
        .collect();
    let provenance_of = |doc: &Json| doc.get("provenance").and_then(Provenance::from_json);
    Ok(Comparison {
        threshold,
        metric,
        rows,
        missing,
        added,
        baseline_provenance: provenance_of(baseline),
        current_provenance: provenance_of(current),
    })
}

/// Reads and compares two harness JSON files.
///
/// # Errors
///
/// Returns a message on unreadable files, invalid JSON, or a
/// non-harness schema.
pub fn compare_files(
    baseline: &std::path::Path,
    current: &std::path::Path,
    metric: CmpMetric,
    threshold: f64,
) -> Result<Comparison, String> {
    let read = |p: &std::path::Path, which: &str| -> Result<Json, String> {
        let text =
            std::fs::read_to_string(p).map_err(|e| format!("{which} {}: {e}", p.display()))?;
        json::parse(&text).map_err(|e| format!("{which} {}: invalid JSON: {e}", p.display()))
    };
    let b = read(baseline, "baseline")?;
    let c = read(current, "current")?;
    compare_docs(&b, &c, metric, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(cases: &[(&str, u64)]) -> Json {
        let arr: Vec<Json> = cases
            .iter()
            .map(|&(name, ns)| {
                Json::object()
                    .set("name", name)
                    .set("min_ns", ns)
                    .set("median_ns", ns + 1)
                    .set("mean_ns", ns + 2)
                    .set("samples", 5u64)
            })
            .collect();
        Json::object().set("suite", "test").set("cases", Json::Arr(arr))
    }

    #[test]
    fn identical_documents_pass() {
        let d = doc(&[("a", 100), ("b", 2_000)]);
        let c = compare_docs(&d, &d, CmpMetric::Min, 0.05).unwrap();
        assert!(c.passed());
        assert_eq!(c.rows.len(), 2);
        assert!(c.regressions().is_empty());
        assert!(c.render().contains("PASS"));
    }

    #[test]
    fn slowdown_past_threshold_regresses_and_within_noise_passes() {
        let base = doc(&[("a", 1_000), ("b", 1_000)]);
        let cur = doc(&[("a", 1_040), ("b", 1_300)]);
        let c = compare_docs(&base, &cur, CmpMetric::Min, 0.10).unwrap();
        assert!(!c.passed());
        let regressed: Vec<&str> = c.regressions().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(regressed, vec!["b"], "4% is noise at a 10% threshold; 30% is not");
        assert!(c.render().contains("REGRESSED"));
        // Speedups never fail, no matter how large.
        let fast = doc(&[("a", 10), ("b", 10)]);
        assert!(compare_docs(&base, &fast, CmpMetric::Min, 0.10).unwrap().passed());
    }

    #[test]
    fn missing_baseline_case_fails_and_added_case_is_informational() {
        let base = doc(&[("a", 100), ("b", 100)]);
        let cur = doc(&[("a", 100), ("c", 100)]);
        let c = compare_docs(&base, &cur, CmpMetric::Min, 0.25).unwrap();
        assert!(!c.passed(), "a dropped benchmark hides regressions");
        assert_eq!(c.missing, vec!["b"]);
        assert_eq!(c.added, vec!["c"]);
        assert_eq!(c.rows.len(), 1);
    }

    #[test]
    fn metric_selection_reads_the_right_key() {
        let base = doc(&[("a", 1_000)]);
        // Perturb only median: min comparison passes, median fails.
        let cur = Json::object().set("suite", "test").set(
            "cases",
            Json::Arr(vec![Json::object()
                .set("name", "a")
                .set("min_ns", 1_000u64)
                .set("median_ns", 9_000u64)
                .set("mean_ns", 1_002u64)
                .set("samples", 5u64)]),
        );
        assert!(compare_docs(&base, &cur, CmpMetric::Min, 0.10).unwrap().passed());
        assert!(!compare_docs(&base, &cur, CmpMetric::Median, 0.10).unwrap().passed());
        assert_eq!(CmpMetric::from_arg("mean").unwrap(), CmpMetric::Mean);
        assert!(CmpMetric::from_arg("max").is_err());
    }

    #[test]
    fn zero_baseline_compares_as_unity() {
        let base = doc(&[("a", 0)]);
        let cur = doc(&[("a", 50)]);
        let c = compare_docs(&base, &cur, CmpMetric::Min, 0.10).unwrap();
        assert!(c.passed(), "a 0 ns baseline yields no meaningful ratio");
        assert_eq!(c.rows[0].ratio(), 1.0);
    }

    #[test]
    fn non_harness_documents_are_rejected_with_context() {
        let err = compare_docs(&Json::object(), &doc(&[]), CmpMetric::Min, 0.1).unwrap_err();
        assert!(err.contains("baseline"), "error names the offending side: {err}");
        let err = compare_docs(&doc(&[]), &Json::object(), CmpMetric::Min, 0.1).unwrap_err();
        assert!(err.contains("current"), "error names the offending side: {err}");
    }

    #[test]
    fn provenance_blocks_are_carried_into_the_report() {
        let p = Provenance::new("bench", None, 5, "harness");
        let base = doc(&[("a", 100)]).set("provenance", p.to_json());
        let cur = doc(&[("a", 100)]);
        let c = compare_docs(&base, &cur, CmpMetric::Min, 0.25).unwrap();
        assert_eq!(c.baseline_provenance, Some(p));
        assert_eq!(c.current_provenance, None, "a pre-provenance document still compares");
        let j = c.to_json();
        assert!(
            Provenance::from_json(j.get("baseline_provenance").unwrap()).is_some(),
            "the JSON report embeds the available side's provenance"
        );
        assert_eq!(j.get("current_provenance"), Some(&Json::Null));
        assert!(c.passed());
    }

    #[test]
    fn json_report_round_trips() {
        let base = doc(&[("a", 1_000)]);
        let cur = doc(&[("a", 2_000)]);
        let c = compare_docs(&base, &cur, CmpMetric::Min, 0.25).unwrap();
        let j = c.to_json();
        assert_eq!(j.get("passed"), Some(&Json::Bool(false)));
        let reparsed = clustered_stats::json::parse(&j.to_string_pretty()).unwrap();
        assert_eq!(reparsed, j);
    }
}
