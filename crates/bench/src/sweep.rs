//! Parallel sweep executor: a declarative grid of experiment points
//! run concurrently over shared captured traces.
//!
//! Every figure and table of the paper is a grid of (workload ×
//! configuration × policy) simulations. The points are independent, so
//! the executor attacks the two redundancies of the old serial loop:
//!
//! 1. **Shared emulation** — each workload's dynamic stream is
//!    captured once ([`CapturedTrace`]) and every point replays the
//!    same buffer, instead of re-running the functional emulator per
//!    point.
//! 2. **Parallel execution** — points fan out over a scoped
//!    `std::thread` worker pool (no external dependencies; the build
//!    is offline). Results return in input order and are bit-identical
//!    to a serial run — each point's simulation is fully isolated, and
//!    `tests/sweep.rs` pins the equivalence.
//!
//! The worker count defaults to the host's available parallelism;
//! `CLUSTERED_JOBS=n` overrides it (`CLUSTERED_JOBS=1` forces the
//! serial path).
//!
//! # Examples
//!
//! ```
//! use clustered_bench::sweep::{capture_for, run_sweep, SweepPoint};
//! use clustered_sim::{FixedPolicy, SimConfig};
//!
//! let gzip = clustered_workloads::by_name("gzip").unwrap();
//! let trace = capture_for(&gzip, 1_000, 5_000);
//! let points: Vec<SweepPoint> = [2usize, 4]
//!     .iter()
//!     .map(|&n| {
//!         SweepPoint::new(
//!             format!("gzip/{n}"),
//!             &trace,
//!             SimConfig::default(),
//!             move || Box::new(FixedPolicy::new(n)),
//!             1_000,
//!             5_000,
//!         )
//!     })
//!     .collect();
//! let stats = run_sweep(&points); // input order, regardless of finish order
//! assert_eq!(stats.len(), 2);
//! assert!(stats.iter().all(|s| s.committed >= 5_000));
//! ```

use crate::run_stream;
use clustered_sim::{ReconfigPolicy, SimConfig, SimStats, SteeringKind};
use clustered_workloads::{CapturedTrace, Workload};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Creates a fresh policy instance for one experiment point.
///
/// Policies are stateful and not shareable across runs, so each point
/// carries a factory; the executor instantiates the policy on whichever
/// worker thread picks the point up.
pub type PolicyFactory = Box<dyn Fn() -> Box<dyn ReconfigPolicy> + Send + Sync>;

/// One point of an experiment grid: a captured trace plus the timing
/// configuration, steering heuristic, policy, and measurement window
/// to simulate it under.
pub struct SweepPoint {
    /// Display label (`workload/config` by convention).
    pub label: String,
    /// The shared dynamic-instruction stream (cheap clone of an
    /// [`Arc`](std::sync::Arc)-backed buffer).
    pub trace: CapturedTrace,
    /// Timing-model configuration.
    pub cfg: SimConfig,
    /// Steering heuristic.
    pub steering: SteeringKind,
    /// Reconfiguration-policy factory.
    pub policy: PolicyFactory,
    /// Warm-up instructions (discarded).
    pub warmup: u64,
    /// Measured instructions.
    pub measure: u64,
}

impl SweepPoint {
    /// A point with the default steering heuristic.
    pub fn new(
        label: impl Into<String>,
        trace: &CapturedTrace,
        cfg: SimConfig,
        policy: impl Fn() -> Box<dyn ReconfigPolicy> + Send + Sync + 'static,
        warmup: u64,
        measure: u64,
    ) -> SweepPoint {
        SweepPoint {
            label: label.into(),
            trace: trace.clone(),
            cfg,
            steering: SteeringKind::default(),
            policy: Box::new(policy),
            warmup,
            measure,
        }
    }

    /// Replaces the steering heuristic (builder style).
    pub fn steering(mut self, steering: SteeringKind) -> SweepPoint {
        self.steering = steering;
        self
    }
}

impl std::fmt::Debug for SweepPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepPoint")
            .field("label", &self.label)
            .field("trace", &self.trace.name().to_string())
            .field("warmup", &self.warmup)
            .field("measure", &self.measure)
            .finish_non_exhaustive()
    }
}

/// Captures `workload` once with enough records for a
/// `warmup + measure` window (see
/// [`CAPTURE_MARGIN`](clustered_workloads::CAPTURE_MARGIN)); the
/// returned trace is shared by every [`SweepPoint`] built from it.
///
/// When `CLUSTERED_TRACE_CACHE` names a directory, the capture goes
/// through the on-disk trace cache
/// ([`capture_for_window_cached`](clustered_workloads::capture_for_window_cached)):
/// a warm run loads the `.ctrace` file instead of re-emulating, and a
/// cold run writes it for next time. Replay from cache is bit-identical
/// to a live capture, so grid results do not depend on cache state
/// (`tests/trace_cache.rs` pins this).
pub fn capture_for(workload: &Workload, warmup: u64, measure: u64) -> CapturedTrace {
    clustered_workloads::capture_for_window_cached(
        workload,
        warmup,
        measure,
        clustered_workloads::env_cache_dir().as_deref(),
    )
}

/// The sweep worker count: `CLUSTERED_JOBS` if set to a positive
/// integer, otherwise the host's available parallelism.
pub fn jobs() -> usize {
    if let Some(n) = std::env::var("CLUSTERED_JOBS").ok().and_then(|v| v.parse().ok()) {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Runs one point: instantiates its policy, replays its captured
/// trace, and returns the measured-window statistics (identical to
/// [`run_experiment_with_steering`](crate::run_experiment_with_steering)
/// on the live workload — the golden test in `tests/sweep.rs` pins
/// this).
///
/// # Panics
///
/// Panics if the captured trace is exhausted before the measurement
/// window completes (the capture was too short for this window —
/// never the case for traces built by [`capture_for`]), or on the
/// configuration/stall conditions of
/// [`run_experiment`](crate::run_experiment).
pub fn run_point(point: &SweepPoint) -> SimStats {
    let stats = run_stream(
        point.trace.replay(),
        point.cfg,
        (point.policy)(),
        point.steering,
        point.warmup,
        point.measure,
    );
    assert!(
        stats.committed >= point.measure || point.trace.ended_at_halt(),
        "sweep point `{}`: captured trace ({} records) exhausted mid-run; \
         capture a longer window",
        point.label,
        point.trace.len(),
    );
    stats
}

/// Runs every point on the calling thread, in order.
pub fn run_sweep_serial(points: &[SweepPoint]) -> Vec<SimStats> {
    points.iter().map(run_point).collect()
}

/// Runs the grid on [`jobs`] worker threads and returns statistics in
/// input order. Bit-identical to [`run_sweep_serial`] — scheduling
/// cannot leak into the results because every simulation is isolated.
pub fn run_sweep(points: &[SweepPoint]) -> Vec<SimStats> {
    run_sweep_jobs(points, jobs())
}

/// [`run_sweep`] with an explicit worker count.
///
/// # Panics
///
/// Propagates panics from worker threads (a panicking point poisons
/// the whole sweep — grids are expected to be panic-free).
pub fn run_sweep_jobs(points: &[SweepPoint], jobs: usize) -> Vec<SimStats> {
    let n = points.len();
    let workers = jobs.min(n).max(1);
    if workers <= 1 {
        return run_sweep_serial(points);
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, SimStats)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, run_point(&points[i]))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut out = vec![SimStats::default(); n];
    let mut filled = 0usize;
    for (i, stats) in rx {
        out[i] = stats;
        filled += 1;
    }
    assert_eq!(filled, n, "sweep lost results (worker thread died?)");
    out
}
