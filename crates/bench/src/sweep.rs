//! Parallel sweep executor: a declarative grid of experiment points
//! run concurrently over shared captured traces.
//!
//! Every figure and table of the paper is a grid of (workload ×
//! configuration × policy) simulations. The points are independent, so
//! the executor attacks the two redundancies of the old serial loop:
//!
//! 1. **Shared emulation** — each workload's dynamic stream is
//!    captured once ([`CapturedTrace`]) and every point replays the
//!    same buffer, instead of re-running the functional emulator per
//!    point.
//! 2. **Parallel execution** — points fan out over a scoped
//!    `std::thread` worker pool (no external dependencies; the build
//!    is offline). Results return in input order and are bit-identical
//!    to a serial run — each point's simulation is fully isolated, and
//!    `tests/sweep.rs` pins the equivalence.
//!
//! The worker count defaults to the host's available parallelism;
//! `CLUSTERED_JOBS=n` overrides it (`CLUSTERED_JOBS=1` forces the
//! serial path).
//!
//! Long grids are silent by default; set `CLUSTERED_PROGRESS=1` to get
//! one stderr line per completed point (completion count, label, and
//! per-point wall time) as the sweep runs.
//!
//! # Examples
//!
//! ```
//! use clustered_bench::sweep::{capture_for, run_sweep, SweepPoint};
//! use clustered_sim::{FixedPolicy, SimConfig};
//!
//! let gzip = clustered_workloads::by_name("gzip").unwrap();
//! let trace = capture_for(&gzip, 1_000, 5_000);
//! let points: Vec<SweepPoint> = [2usize, 4]
//!     .iter()
//!     .map(|&n| {
//!         SweepPoint::new(
//!             format!("gzip/{n}"),
//!             &trace,
//!             SimConfig::default(),
//!             move || Box::new(FixedPolicy::new(n)),
//!             1_000,
//!             5_000,
//!         )
//!     })
//!     .collect();
//! let stats = run_sweep(&points); // input order, regardless of finish order
//! assert_eq!(stats.len(), 2);
//! assert!(stats.iter().all(|s| s.committed >= 5_000));
//! ```

use crate::{run_stream, run_stream_decisions, RunWithDecisions};
use clustered_sim::{ReconfigPolicy, SimConfig, SimStats, SteeringKind};
use clustered_workloads::{CapturedTrace, Workload};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// Creates a fresh policy instance for one experiment point.
///
/// Policies are stateful and not shareable across runs, so each point
/// carries a factory; the executor instantiates the policy on whichever
/// worker thread picks the point up.
pub type PolicyFactory = Box<dyn Fn() -> Box<dyn ReconfigPolicy> + Send + Sync>;

/// One point of an experiment grid: a captured trace plus the timing
/// configuration, steering heuristic, policy, and measurement window
/// to simulate it under.
pub struct SweepPoint {
    /// Display label (`workload/config` by convention).
    pub label: String,
    /// The shared dynamic-instruction stream (cheap clone of an
    /// [`Arc`](std::sync::Arc)-backed buffer).
    pub trace: CapturedTrace,
    /// Timing-model configuration.
    pub cfg: SimConfig,
    /// Steering heuristic.
    pub steering: SteeringKind,
    /// Reconfiguration-policy factory.
    pub policy: PolicyFactory,
    /// Warm-up instructions (discarded).
    pub warmup: u64,
    /// Measured instructions.
    pub measure: u64,
}

impl SweepPoint {
    /// A point with the default steering heuristic.
    pub fn new(
        label: impl Into<String>,
        trace: &CapturedTrace,
        cfg: SimConfig,
        policy: impl Fn() -> Box<dyn ReconfigPolicy> + Send + Sync + 'static,
        warmup: u64,
        measure: u64,
    ) -> SweepPoint {
        SweepPoint {
            label: label.into(),
            trace: trace.clone(),
            cfg,
            steering: SteeringKind::default(),
            policy: Box::new(policy),
            warmup,
            measure,
        }
    }

    /// Replaces the steering heuristic (builder style).
    pub fn steering(mut self, steering: SteeringKind) -> SweepPoint {
        self.steering = steering;
        self
    }
}

impl std::fmt::Debug for SweepPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepPoint")
            .field("label", &self.label)
            .field("trace", &self.trace.name().to_string())
            .field("warmup", &self.warmup)
            .field("measure", &self.measure)
            .finish_non_exhaustive()
    }
}

/// Captures `workload` once with enough records for a
/// `warmup + measure` window (see
/// [`CAPTURE_MARGIN`](clustered_workloads::CAPTURE_MARGIN)); the
/// returned trace is shared by every [`SweepPoint`] built from it.
///
/// When `CLUSTERED_TRACE_CACHE` names a directory, the capture goes
/// through the on-disk trace cache
/// ([`capture_for_window_cached`](clustered_workloads::capture_for_window_cached)):
/// a warm run loads the `.ctrace` file instead of re-emulating, and a
/// cold run writes it for next time. Replay from cache is bit-identical
/// to a live capture, so grid results do not depend on cache state
/// (`tests/trace_cache.rs` pins this).
pub fn capture_for(workload: &Workload, warmup: u64, measure: u64) -> CapturedTrace {
    clustered_workloads::capture_for_window_cached(
        workload,
        warmup,
        measure,
        clustered_workloads::env_cache_dir().as_deref(),
    )
}

/// The sweep worker count: `CLUSTERED_JOBS` if set to a positive
/// integer, otherwise the host's available parallelism.
pub fn jobs() -> usize {
    if let Some(n) = std::env::var("CLUSTERED_JOBS").ok().and_then(|v| v.parse().ok()) {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Runs one point: instantiates its policy, replays its captured
/// trace, and returns the measured-window statistics (identical to
/// [`run_experiment_with_steering`](crate::run_experiment_with_steering)
/// on the live workload — the golden test in `tests/sweep.rs` pins
/// this).
///
/// # Panics
///
/// Panics if the captured trace is exhausted before the measurement
/// window completes (the capture was too short for this window —
/// never the case for traces built by [`capture_for`]), or on the
/// configuration/stall conditions of
/// [`run_experiment`](crate::run_experiment).
pub fn run_point(point: &SweepPoint) -> SimStats {
    let stats = run_stream(
        point.trace.replay(),
        point.cfg,
        (point.policy)(),
        point.steering,
        point.warmup,
        point.measure,
    );
    assert!(
        stats.committed >= point.measure || point.trace.ended_at_halt(),
        "sweep point `{}`: captured trace ({} records) exhausted mid-run; \
         capture a longer window",
        point.label,
        point.trace.len(),
    );
    stats
}

/// [`run_point`] variant that also collects the policy's decision
/// telemetry (the experiment binaries' `--decisions` runner).
///
/// # Panics
///
/// As for [`run_point`].
pub fn run_point_decisions(point: &SweepPoint) -> RunWithDecisions {
    let run = run_stream_decisions(
        point.trace.replay(),
        point.cfg,
        (point.policy)(),
        point.steering,
        point.warmup,
        point.measure,
    );
    assert!(
        run.stats.committed >= point.measure || point.trace.ended_at_halt(),
        "sweep point `{}`: captured trace ({} records) exhausted mid-run; \
         capture a longer window",
        point.label,
        point.trace.len(),
    );
    run
}

/// Whether per-point progress lines go to stderr
/// (`CLUSTERED_PROGRESS=1`).
fn progress_enabled() -> bool {
    progress_enabled_from(std::env::var("CLUSTERED_PROGRESS").ok().as_deref())
}

/// The pure decision seam behind [`progress_enabled`], unit-testable
/// without mutating the process environment.
fn progress_enabled_from(value: Option<&str>) -> bool {
    value == Some("1")
}

fn report_progress(done: usize, total: usize, label: &str, seconds: f64) {
    eprintln!("clustered-sweep: [{done}/{total}] {label} ({seconds:.2}s)");
}

/// Runs every point on the calling thread, in order.
pub fn run_sweep_serial(points: &[SweepPoint]) -> Vec<SimStats> {
    run_sweep_with(points, 1, run_point)
}

/// Runs the grid on [`jobs`] worker threads and returns statistics in
/// input order. Bit-identical to [`run_sweep_serial`] — scheduling
/// cannot leak into the results because every simulation is isolated.
pub fn run_sweep(points: &[SweepPoint]) -> Vec<SimStats> {
    run_sweep_jobs(points, jobs())
}

/// [`run_sweep`] with an explicit worker count.
///
/// # Panics
///
/// Propagates panics from worker threads (a panicking point poisons
/// the whole sweep — grids are expected to be panic-free).
pub fn run_sweep_jobs(points: &[SweepPoint], jobs: usize) -> Vec<SimStats> {
    run_sweep_with(points, jobs, run_point)
}

/// The generic sweep executor: applies `runner` to every point on up
/// to `jobs` worker threads and returns the results in input order.
///
/// [`run_sweep`] is `run_sweep_with(points, jobs(), run_point)`; pass
/// [`run_point_decisions`] to collect decision telemetry per point, or
/// any custom closure. With `CLUSTERED_PROGRESS=1` each completed
/// point logs one stderr line as it finishes, in completion (not
/// input) order.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn run_sweep_with<R, F>(points: &[SweepPoint], jobs: usize, runner: F) -> Vec<R>
where
    R: Send,
    F: Fn(&SweepPoint) -> R + Sync,
{
    let n = points.len();
    let progress = progress_enabled();
    let workers = jobs.min(n).max(1);
    if workers <= 1 {
        let mut out = Vec::with_capacity(n);
        for (i, point) in points.iter().enumerate() {
            let started = Instant::now();
            out.push(runner(point));
            if progress {
                report_progress(i + 1, n, &point.label, started.elapsed().as_secs_f64());
            }
        }
        return out;
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R, f64)>();
    let runner = &runner;
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut filled = 0usize;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let started = Instant::now();
                let result = runner(&points[i]);
                if tx.send((i, result, started.elapsed().as_secs_f64())).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Drain on the calling thread while workers run, so progress
        // lines appear live rather than after the final barrier.
        for (i, result, seconds) in rx {
            out[i] = Some(result);
            filled += 1;
            if progress {
                report_progress(filled, n, &points[i].label, seconds);
            }
        }
    });
    assert_eq!(filled, n, "sweep lost results (worker thread died?)");
    out.into_iter().map(|r| r.expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_flag_requires_exactly_one() {
        assert!(progress_enabled_from(Some("1")));
        assert!(!progress_enabled_from(Some("0")));
        assert!(!progress_enabled_from(Some("yes")));
        assert!(!progress_enabled_from(Some("")));
        assert!(!progress_enabled_from(None));
    }
}
