//! Parallel sweep executor: a declarative grid of experiment points
//! run concurrently over shared captured traces.
//!
//! Every figure and table of the paper is a grid of (workload ×
//! configuration × policy) simulations. The points are independent, so
//! the executor attacks the two redundancies of the old serial loop:
//!
//! 1. **Shared emulation** — each workload's dynamic stream is
//!    captured once ([`CapturedTrace`]) and every point replays the
//!    same buffer, instead of re-running the functional emulator per
//!    point.
//! 2. **Parallel execution** — points fan out over a scoped
//!    `std::thread` worker pool (no external dependencies; the build
//!    is offline). Results return in input order and are bit-identical
//!    to a serial run — each point's simulation is fully isolated, and
//!    `tests/sweep.rs` pins the equivalence.
//!
//! The worker count defaults to the host's available parallelism;
//! `CLUSTERED_JOBS=n` overrides it (`CLUSTERED_JOBS=1` forces the
//! serial path).
//!
//! Long grids are silent by default. Set `CLUSTERED_PROGRESS=1` to get
//! one stderr line per completed point (completion count, label,
//! per-point wall time, cumulative elapsed, and an ETA extrapolated
//! from completed-point throughput) as the sweep runs — or set it to a
//! path ending in `.jsonl` to append one structured heartbeat record
//! per completion instead (schema in EXPERIMENTS.md), the stream a
//! sweep coordinator can consume.
//!
//! # Examples
//!
//! ```
//! use clustered_bench::sweep::{capture_for, run_sweep, SweepPoint};
//! use clustered_sim::{FixedPolicy, SimConfig};
//!
//! let gzip = clustered_workloads::by_name("gzip").unwrap();
//! let trace = capture_for(&gzip, 1_000, 5_000);
//! let points: Vec<SweepPoint> = [2usize, 4]
//!     .iter()
//!     .map(|&n| {
//!         SweepPoint::new(
//!             format!("gzip/{n}"),
//!             &trace,
//!             SimConfig::default(),
//!             move || Box::new(FixedPolicy::new(n)),
//!             1_000,
//!             5_000,
//!         )
//!     })
//!     .collect();
//! let stats = run_sweep(&points); // input order, regardless of finish order
//! assert_eq!(stats.len(), 2);
//! assert!(stats.iter().all(|s| s.committed >= 5_000));
//! ```

use crate::{run_stream, run_stream_decisions, RunWithDecisions};
use clustered_sim::{ReconfigPolicy, SimConfig, SimStats, SteeringKind};
use clustered_workloads::{CapturedTrace, CompiledTrace, Workload};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// Creates a fresh policy instance for one experiment point.
///
/// Policies are stateful and not shareable across runs, so each point
/// carries a factory; the executor instantiates the policy on whichever
/// worker thread picks the point up.
pub type PolicyFactory = Box<dyn Fn() -> Box<dyn ReconfigPolicy> + Send + Sync>;

/// One point of an experiment grid: a captured trace plus the timing
/// configuration, steering heuristic, policy, and measurement window
/// to simulate it under.
pub struct SweepPoint {
    /// Display label (`workload/config` by convention).
    pub label: String,
    /// The shared dynamic-instruction stream (cheap clone of an
    /// [`Arc`](std::sync::Arc)-backed buffer).
    pub trace: CapturedTrace,
    /// The trace's pre-decoded form, which the point runners actually
    /// replay. Compiled once per capture — `CapturedTrace::compile` is
    /// memoized, so every point sharing a capture shares one table —
    /// and a cheap `Arc`-backed clone per point.
    pub compiled: CompiledTrace,
    /// Timing-model configuration.
    pub cfg: SimConfig,
    /// Steering heuristic.
    pub steering: SteeringKind,
    /// Reconfiguration-policy factory.
    pub policy: PolicyFactory,
    /// Warm-up instructions (discarded).
    pub warmup: u64,
    /// Measured instructions.
    pub measure: u64,
    /// FNV-1a checksum of the captured dynamic stream
    /// ([`CapturedTrace::checksum`]), stamped into heartbeat records
    /// so a stream consumer can tie each point back to the exact
    /// trace it replayed.
    pub trace_checksum: u64,
    /// Digest of the timing configuration
    /// ([`SimConfig::digest`](clustered_sim::SimConfig::digest)),
    /// likewise stamped into heartbeats.
    pub config_digest: u64,
}

impl SweepPoint {
    /// A point with the default steering heuristic.
    pub fn new(
        label: impl Into<String>,
        trace: &CapturedTrace,
        cfg: SimConfig,
        policy: impl Fn() -> Box<dyn ReconfigPolicy> + Send + Sync + 'static,
        warmup: u64,
        measure: u64,
    ) -> SweepPoint {
        SweepPoint {
            label: label.into(),
            trace: trace.clone(),
            compiled: trace.compile(),
            cfg,
            steering: SteeringKind::default(),
            policy: Box::new(policy),
            warmup,
            measure,
            trace_checksum: trace.checksum(),
            config_digest: cfg.digest(),
        }
    }

    /// Replaces the steering heuristic (builder style).
    pub fn steering(mut self, steering: SteeringKind) -> SweepPoint {
        self.steering = steering;
        self
    }
}

impl std::fmt::Debug for SweepPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepPoint")
            .field("label", &self.label)
            .field("trace", &self.trace.name().to_string())
            .field("warmup", &self.warmup)
            .field("measure", &self.measure)
            .finish_non_exhaustive()
    }
}

/// Captures `workload` once with enough records for a
/// `warmup + measure` window (see
/// [`CAPTURE_MARGIN`](clustered_workloads::CAPTURE_MARGIN)); the
/// returned trace is shared by every [`SweepPoint`] built from it.
///
/// When `CLUSTERED_TRACE_CACHE` names a directory, the capture goes
/// through the on-disk trace cache
/// ([`capture_for_window_cached`](clustered_workloads::capture_for_window_cached)):
/// a warm run loads the `.ctrace` file instead of re-emulating, and a
/// cold run writes it for next time. Replay from cache is bit-identical
/// to a live capture, so grid results do not depend on cache state
/// (`tests/trace_cache.rs` pins this).
pub fn capture_for(workload: &Workload, warmup: u64, measure: u64) -> CapturedTrace {
    clustered_workloads::capture_for_window_cached(
        workload,
        warmup,
        measure,
        clustered_workloads::env_cache_dir().as_deref(),
    )
}

/// The sweep worker count: `CLUSTERED_JOBS` if set to a positive
/// integer, otherwise the host's available parallelism.
pub fn jobs() -> usize {
    if let Some(n) = std::env::var("CLUSTERED_JOBS").ok().and_then(|v| v.parse().ok()) {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Runs one point: instantiates its policy, replays the compiled form
/// of its captured trace (pre-decoded micro-ops, block-batched fetch),
/// and returns the measured-window statistics (identical to
/// [`run_experiment_with_steering`](crate::run_experiment_with_steering)
/// on the live workload — the golden test in `tests/sweep.rs` pins
/// this).
///
/// # Panics
///
/// Panics if the captured trace is exhausted before the measurement
/// window completes (the capture was too short for this window —
/// never the case for traces built by [`capture_for`]), or on the
/// configuration/stall conditions of
/// [`run_experiment`](crate::run_experiment).
pub fn run_point(point: &SweepPoint) -> SimStats {
    let stats = run_stream(
        point.compiled.replay(),
        point.cfg,
        (point.policy)(),
        point.steering,
        point.warmup,
        point.measure,
    );
    assert!(
        stats.committed >= point.measure || point.trace.ended_at_halt(),
        "sweep point `{}`: captured trace ({} records) exhausted mid-run; \
         capture a longer window",
        point.label,
        point.trace.len(),
    );
    stats
}

/// [`run_point`] variant that also collects the policy's decision
/// telemetry (the experiment binaries' `--decisions` runner).
///
/// # Panics
///
/// As for [`run_point`].
pub fn run_point_decisions(point: &SweepPoint) -> RunWithDecisions {
    let run = run_stream_decisions(
        point.compiled.replay(),
        point.cfg,
        (point.policy)(),
        point.steering,
        point.warmup,
        point.measure,
    );
    assert!(
        run.stats.committed >= point.measure || point.trace.ended_at_halt(),
        "sweep point `{}`: captured trace ({} records) exhausted mid-run; \
         capture a longer window",
        point.label,
        point.trace.len(),
    );
    run
}

/// Where per-point progress reports go, decided by
/// `CLUSTERED_PROGRESS`:
///
/// * `1` — one human-readable stderr line per completed point;
/// * a path ending in `.jsonl` — one structured heartbeat JSON object
///   per line, appended to that file (the stream the future sweep
///   coordinator consumes);
/// * anything else (unset, `0`, empty, junk) — silence.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ProgressMode {
    Off,
    Stderr,
    Jsonl(std::path::PathBuf),
}

/// The pure decision seam behind the progress sink, unit-testable
/// without mutating the process environment. Leading/trailing
/// whitespace is ignored; an unrecognised value is `Off`, never an
/// error — progress is best-effort observability.
fn progress_mode_from(value: Option<&str>) -> ProgressMode {
    match value.map(str::trim) {
        Some("1") => ProgressMode::Stderr,
        Some(v) if v.len() > ".jsonl".len() && v.ends_with(".jsonl") => {
            ProgressMode::Jsonl(std::path::PathBuf::from(v))
        }
        _ => ProgressMode::Off,
    }
}

/// Whether `CLUSTERED_PROGRESS` selects the human-readable stderr
/// lines (the original boolean seam, kept for its edge-case tests).
#[cfg(test)]
fn progress_enabled_from(value: Option<&str>) -> bool {
    progress_mode_from(value) == ProgressMode::Stderr
}

/// Remaining wall-clock estimate from completed-point throughput:
/// `elapsed / done` per point times the points left. `None` until the
/// first point completes (no throughput to extrapolate from).
/// `None` also covers a non-finite extrapolation (a clock glitch or an
/// absurd point count must yield a null `eta_s`, never `inf`/`NaN` in
/// the heartbeat stream or an `infs` on stderr).
fn eta_seconds(elapsed: f64, done: usize, total: usize) -> Option<f64> {
    if done == 0 {
        return None;
    }
    Some(elapsed / done as f64 * total.saturating_sub(done) as f64).filter(|s| s.is_finite())
}

/// One structured heartbeat record (see EXPERIMENTS.md, "Sweep
/// heartbeats").
#[allow(clippy::too_many_arguments)]
fn heartbeat_json(
    label: &str,
    worker: usize,
    done: usize,
    total: usize,
    point_s: f64,
    elapsed_s: f64,
    sim_cycles: Option<u64>,
    trace_checksum: u64,
    config_digest: u64,
) -> clustered_stats::Json {
    use clustered_stats::Json;
    let eta = eta_seconds(elapsed_s, done, total);
    let per_s = sim_cycles
        .filter(|_| point_s > 0.0)
        .map(|c| c as f64 / point_s)
        .filter(|r| r.is_finite());
    Json::object()
        .set("event", "point")
        .set("label", label)
        .set("worker", worker)
        .set("done", done)
        .set("total", total)
        .set("point_s", point_s)
        .set("elapsed_s", elapsed_s)
        .set("eta_s", eta.map_or(Json::Null, Json::from))
        .set("sim_cycles", sim_cycles.map_or(Json::Null, Json::from))
        .set("sim_cycles_per_s", per_s.map_or(Json::Null, Json::from))
        .set("trace_checksum", trace_checksum)
        .set("config_digest", config_digest)
}

/// The per-sweep progress reporter: formats stderr lines or appends
/// heartbeat JSONL, per [`ProgressMode`]. All failures are soft — a
/// progress stream that cannot be written must never kill a sweep.
struct ProgressSink {
    mode: ProgressMode,
    started: Instant,
    total: usize,
    file: Option<std::fs::File>,
}

impl ProgressSink {
    fn new(total: usize, workers: usize) -> ProgressSink {
        let (mode, file) =
            match progress_mode_from(std::env::var("CLUSTERED_PROGRESS").ok().as_deref()) {
                ProgressMode::Jsonl(path) => {
                    match std::fs::OpenOptions::new().create(true).append(true).open(&path) {
                        Ok(f) => (ProgressMode::Jsonl(path), Some(f)),
                        Err(e) => {
                            eprintln!(
                                "clustered-sweep: cannot open progress stream {}: {e}",
                                path.display()
                            );
                            (ProgressMode::Off, None)
                        }
                    }
                }
                other => (other, None),
            };
        let mut sink = ProgressSink { mode, started: Instant::now(), total, file };
        if matches!(sink.mode, ProgressMode::Jsonl(_)) {
            sink.emit(
                clustered_stats::Json::object()
                    .set("event", "sweep_start")
                    .set("total", total)
                    .set("workers", workers),
            );
        }
        sink
    }

    fn emit(&mut self, line: clustered_stats::Json) {
        use std::io::Write;
        if let Some(f) = &mut self.file {
            let _ = writeln!(f, "{}", line.to_string_compact());
        }
    }

    fn point(
        &mut self,
        done: usize,
        point: &SweepPoint,
        worker: usize,
        point_s: f64,
        sim_cycles: Option<u64>,
    ) {
        let elapsed = self.started.elapsed().as_secs_f64();
        match self.mode {
            ProgressMode::Off => {}
            ProgressMode::Stderr => {
                let eta = match eta_seconds(elapsed, done, self.total) {
                    Some(s) => format!("{s:.1}s"),
                    None => "?".to_string(),
                };
                eprintln!(
                    "clustered-sweep: [{done}/{total}] {label} ({point_s:.2}s point, \
                     {elapsed:.1}s elapsed, eta {eta})",
                    total = self.total,
                    label = point.label,
                );
            }
            ProgressMode::Jsonl(_) => {
                let line = heartbeat_json(
                    &point.label,
                    worker,
                    done,
                    self.total,
                    point_s,
                    elapsed,
                    sim_cycles,
                    point.trace_checksum,
                    point.config_digest,
                );
                self.emit(line);
            }
        }
    }

    fn finish(&mut self) {
        if matches!(self.mode, ProgressMode::Jsonl(_)) {
            let line = clustered_stats::Json::object()
                .set("event", "sweep_end")
                .set("total", self.total)
                .set("elapsed_s", self.started.elapsed().as_secs_f64());
            self.emit(line);
        }
    }
}

/// Per-point result types the sweep executor can report throughput
/// for: the heartbeat stream quotes `sim_cycles()` (when known) as
/// sim-cycles/sec per completed point.
pub trait SweepOutcome {
    /// Simulated cycles of the point's measured window, if the result
    /// carries them.
    fn sim_cycles(&self) -> Option<u64> {
        None
    }
}

impl SweepOutcome for SimStats {
    fn sim_cycles(&self) -> Option<u64> {
        Some(self.cycles)
    }
}

impl SweepOutcome for RunWithDecisions {
    fn sim_cycles(&self) -> Option<u64> {
        Some(self.stats.cycles)
    }
}

/// Caps the sweep worker count so `workers × max_intra` (sweep threads
/// times the widest point's intra-run pool) never exceeds the host's
/// available cores. Returns the effective worker count and whether a
/// cap was applied. Never returns zero workers: a single point wider
/// than the machine still runs, just one at a time.
fn cap_for_oversubscription(
    workers: usize,
    max_intra: usize,
    available: usize,
) -> (usize, bool) {
    let max_intra = max_intra.max(1);
    if workers.saturating_mul(max_intra) <= available {
        return (workers, false);
    }
    ((available / max_intra).max(1), true)
}

/// Runs every point on the calling thread, in order.
pub fn run_sweep_serial(points: &[SweepPoint]) -> Vec<SimStats> {
    run_sweep_with(points, 1, run_point)
}

/// Runs the grid on [`jobs`] worker threads and returns statistics in
/// input order. Bit-identical to [`run_sweep_serial`] — scheduling
/// cannot leak into the results because every simulation is isolated.
pub fn run_sweep(points: &[SweepPoint]) -> Vec<SimStats> {
    run_sweep_jobs(points, jobs())
}

/// [`run_sweep`] with an explicit worker count.
///
/// # Panics
///
/// Propagates panics from worker threads (a panicking point poisons
/// the whole sweep — grids are expected to be panic-free).
pub fn run_sweep_jobs(points: &[SweepPoint], jobs: usize) -> Vec<SimStats> {
    run_sweep_with(points, jobs, run_point)
}

/// The generic sweep executor: applies `runner` to every point on up
/// to `jobs` worker threads and returns the results in input order.
///
/// [`run_sweep`] is `run_sweep_with(points, jobs(), run_point)`; pass
/// [`run_point_decisions`] to collect decision telemetry per point, or
/// any custom closure whose result implements [`SweepOutcome`]. With
/// `CLUSTERED_PROGRESS=1` each completed point logs one stderr line
/// (with cumulative elapsed time and an ETA) as it finishes, in
/// completion (not input) order; with `CLUSTERED_PROGRESS=<path>.jsonl`
/// the same completions stream as structured heartbeat records instead.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn run_sweep_with<R, F>(points: &[SweepPoint], jobs: usize, runner: F) -> Vec<R>
where
    R: Send + SweepOutcome,
    F: Fn(&SweepPoint) -> R + Sync,
{
    let n = points.len();
    // Points may themselves fan out (`SimConfig::intra_jobs` drives an
    // intra-run thread pool), so the product of sweep workers and the
    // widest point must not oversubscribe the host.
    let max_intra = points.iter().map(|p| p.cfg.intra_jobs.max(1)).max().unwrap_or(1);
    let available =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let (workers, capped) = cap_for_oversubscription(jobs.min(n).max(1), max_intra, available);
    let mut sink = ProgressSink::new(n, workers);
    if capped {
        eprintln!(
            "clustered-sweep: capping workers to {workers} \
             ({max_intra} intra-run threads per point, {available} cores available)"
        );
        sink.emit(
            clustered_stats::Json::object()
                .set("event", "oversubscription_warning")
                .set("workers", workers)
                .set("intra_jobs", max_intra)
                .set("available_cores", available),
        );
    }
    if workers <= 1 {
        let mut out = Vec::with_capacity(n);
        for (i, point) in points.iter().enumerate() {
            let started = Instant::now();
            out.push(runner(point));
            let cycles = out.last().expect("just pushed").sim_cycles();
            sink.point(i + 1, point, 0, started.elapsed().as_secs_f64(), cycles);
        }
        sink.finish();
        return out;
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, usize, R, f64)>();
    let runner = &runner;
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut filled = 0usize;
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let started = Instant::now();
                let result = runner(&points[i]);
                if tx.send((w, i, result, started.elapsed().as_secs_f64())).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Drain on the calling thread while workers run, so progress
        // lines appear live rather than after the final barrier.
        for (w, i, result, seconds) in rx {
            let cycles = result.sim_cycles();
            out[i] = Some(result);
            filled += 1;
            sink.point(filled, &points[i], w, seconds, cycles);
        }
    });
    sink.finish();
    assert_eq!(filled, n, "sweep lost results (worker thread died?)");
    out.into_iter().map(|r| r.expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_flag_requires_exactly_one() {
        assert!(progress_enabled_from(Some("1")));
        assert!(progress_enabled_from(Some(" 1 ")), "whitespace is trimmed");
        assert!(!progress_enabled_from(Some("0")));
        assert!(!progress_enabled_from(Some("yes")));
        assert!(!progress_enabled_from(Some("")));
        assert!(!progress_enabled_from(Some("   ")));
        assert!(!progress_enabled_from(Some("11")));
        assert!(!progress_enabled_from(Some("true")));
        assert!(!progress_enabled_from(Some("progress.jsonl")), "jsonl selects the stream mode");
        assert!(!progress_enabled_from(None));
    }

    #[test]
    fn oversubscription_cap_bounds_workers_times_intra() {
        // Sequential points (intra 1): no cap until workers exceed cores.
        assert_eq!(cap_for_oversubscription(8, 1, 8), (8, false));
        // 8 workers × 4 intra threads on 8 cores → 2 workers.
        assert_eq!(cap_for_oversubscription(8, 4, 8), (2, true));
        // A point wider than the machine still gets one worker.
        assert_eq!(cap_for_oversubscription(4, 16, 8), (1, true));
        // Zero-width guard: intra is clamped to at least 1.
        assert_eq!(cap_for_oversubscription(4, 0, 2), (2, true));
    }

    #[test]
    fn progress_mode_distinguishes_stderr_jsonl_and_off() {
        use super::ProgressMode::*;
        assert_eq!(progress_mode_from(Some("1")), Stderr);
        assert_eq!(
            progress_mode_from(Some("/tmp/hb.jsonl")),
            Jsonl(std::path::PathBuf::from("/tmp/hb.jsonl"))
        );
        assert_eq!(
            progress_mode_from(Some("  run.jsonl\n")),
            Jsonl(std::path::PathBuf::from("run.jsonl")),
            "whitespace trimmed before the suffix check"
        );
        for junk in [None, Some("0"), Some(""), Some("  "), Some("2"), Some(".jsonl"), Some("x")] {
            assert_eq!(progress_mode_from(junk), Off, "junk value {junk:?} must be Off");
        }
    }

    #[test]
    fn eta_extrapolates_from_completed_point_throughput() {
        assert_eq!(eta_seconds(10.0, 0, 4), None, "no throughput before the first point");
        assert_eq!(eta_seconds(10.0, 2, 4), Some(10.0), "2 done in 10s -> 2 left in 10s");
        assert_eq!(eta_seconds(9.0, 3, 3), Some(0.0), "done sweep has nothing left");
        assert_eq!(eta_seconds(5.0, 4, 3), Some(0.0), "overshoot saturates, never negative");
        assert_eq!(eta_seconds(0.0, 1, 4), Some(0.0), "zero elapsed is a zero eta, not NaN");
        assert_eq!(
            eta_seconds(f64::MAX, 1, usize::MAX),
            None,
            "a non-finite extrapolation degrades to unknown"
        );
    }

    #[test]
    fn heartbeat_never_records_nonfinite_rates() {
        use clustered_stats::Json;
        // First point of the sweep: no throughput yet, eta_s is null.
        let line = heartbeat_json("gzip/4", 0, 0, 8, 0.5, 0.5, Some(40_000), 7, 9);
        assert_eq!(line.get("eta_s"), Some(&Json::Null));
        // Zero-duration point (timer granularity): no cycles/s rate,
        // and the zero-elapsed eta stays a number, not NaN.
        let line = heartbeat_json("gzip/4", 0, 1, 8, 0.0, 0.0, Some(40_000), 7, 9);
        assert_eq!(line.get("sim_cycles_per_s"), Some(&Json::Null));
        assert_eq!(line.get("eta_s").and_then(Json::as_f64), Some(0.0));
        // Subnormal point time would overflow the rate to inf.
        let line = heartbeat_json("gzip/4", 0, 1, 8, f64::MIN_POSITIVE, 1.0, Some(u64::MAX), 7, 9);
        assert_eq!(line.get("sim_cycles_per_s"), Some(&Json::Null));
    }

    #[test]
    fn heartbeat_record_has_the_documented_schema() {
        use clustered_stats::Json;
        let line = heartbeat_json("gzip/4", 2, 3, 8, 0.5, 6.0, Some(40_000), 0xfeed, 0xbeef);
        assert_eq!(
            line.keys().unwrap(),
            vec![
                "event",
                "label",
                "worker",
                "done",
                "total",
                "point_s",
                "elapsed_s",
                "eta_s",
                "sim_cycles",
                "sim_cycles_per_s",
                "trace_checksum",
                "config_digest"
            ]
        );
        assert_eq!(line.get("event").and_then(Json::as_str), Some("point"));
        assert_eq!(line.get("eta_s").and_then(Json::as_f64), Some(10.0));
        assert_eq!(line.get("sim_cycles_per_s").and_then(Json::as_f64), Some(80_000.0));
        assert_eq!(line.get("trace_checksum").and_then(Json::as_u64), Some(0xfeed));
        assert_eq!(line.get("config_digest").and_then(Json::as_u64), Some(0xbeef));
        // Every line parses back — the stream is consumable by the
        // stats crate's own parser.
        let reparsed = clustered_stats::json::parse(&line.to_string_compact()).unwrap();
        assert_eq!(reparsed, line);
        // A runner without cycle counts degrades to nulls, not lies.
        let bare = heartbeat_json("p", 0, 1, 1, 0.0, 0.0, None, 0, 0);
        assert_eq!(bare.get("sim_cycles"), Some(&Json::Null));
        assert_eq!(bare.get("sim_cycles_per_s"), Some(&Json::Null));
    }
}
