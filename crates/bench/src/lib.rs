//! Experiment harness regenerating every table and figure of the
//! paper's evaluation. Each binary under `src/bin/` reproduces one
//! table or figure; this library holds the shared runner.
//!
//! Run lengths default to values that finish a full experiment in
//! minutes on a laptop; set `CLUSTERED_MEASURE` / `CLUSTERED_WARMUP`
//! (instruction counts) to trade time for fidelity.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cmp;
pub mod harness;
pub mod sweep;

use clustered_emu::TraceSource;
use clustered_sim::{
    DecisionRecord, DecisionTrace, Processor, ReconfigPolicy, SimConfig, SimStats, SteeringKind,
};
use clustered_stats::{Json, Provenance};
use clustered_workloads::Workload;
use std::path::{Path, PathBuf};

/// Default measured instructions per run.
pub const DEFAULT_MEASURE: u64 = 400_000;
/// Default warm-up instructions per run.
pub const DEFAULT_WARMUP: u64 = 50_000;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Measured instructions per run (`CLUSTERED_MEASURE` overrides).
pub fn measure_instructions() -> u64 {
    env_u64("CLUSTERED_MEASURE", DEFAULT_MEASURE)
}

/// Warm-up instructions per run (`CLUSTERED_WARMUP` overrides).
pub fn warmup_instructions() -> u64 {
    env_u64("CLUSTERED_WARMUP", DEFAULT_WARMUP)
}

/// Writes `doc` to `results/<name>.json` (creating the directory),
/// pretty-printed, and returns the path. Every experiment binary's
/// `--json` mode funnels through here so the output location is
/// uniform across figures.
///
/// # Errors
///
/// Propagates filesystem errors from creating the directory or writing
/// the file.
pub fn write_results_json(name: &str, doc: &Json) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, doc.to_string_pretty())?;
    Ok(path)
}

/// Provenance for a multi-trace grid artifact (a whole figure or
/// table): named after the experiment, no single trace checksum,
/// the digest of the *base* configuration the grid varies from, and
/// the `grid` policy id. Single-trace single-policy artifacts should
/// build a precise [`Provenance`] instead.
pub fn grid_provenance(experiment: &str, base_cfg: &SimConfig) -> Provenance {
    Provenance::new(experiment, None, base_cfg.digest(), "grid")
}

/// Wraps `data` in the `{schema_version, provenance, data}` envelope
/// ([`clustered_stats::envelope`]) and writes it to
/// `results/<name>.json` via [`write_results_json`]. Every experiment
/// binary's `--json` mode funnels through here so each artifact
/// carries its provenance.
///
/// # Errors
///
/// As for [`write_results_json`].
pub fn write_results_envelope(
    name: &str,
    provenance: &Provenance,
    data: Json,
) -> std::io::Result<PathBuf> {
    write_results_json(name, &clustered_stats::envelope(provenance, data))
}

/// Runs `workload` under `cfg` and `policy`, discarding a warm-up and
/// returning statistics for the measured window.
///
/// # Panics
///
/// Panics if the configuration is invalid or the simulator reports an
/// internal stall — both indicate harness bugs, not experiment
/// outcomes.
pub fn run_experiment(
    workload: &Workload,
    cfg: SimConfig,
    policy: Box<dyn ReconfigPolicy>,
    warmup: u64,
    measure: u64,
) -> SimStats {
    run_experiment_with_steering(workload, cfg, policy, SteeringKind::default(), warmup, measure)
}

/// [`run_experiment`] with an explicit steering heuristic.
///
/// # Panics
///
/// As for [`run_experiment`].
pub fn run_experiment_with_steering(
    workload: &Workload,
    cfg: SimConfig,
    policy: Box<dyn ReconfigPolicy>,
    steering: SteeringKind,
    warmup: u64,
    measure: u64,
) -> SimStats {
    let stream = workload
        .trace()
        .map(|r| r.unwrap_or_else(|e| panic!("workload faulted during simulation: {e}")));
    run_stream(stream, cfg, policy, steering, warmup, measure)
}

/// Runs an arbitrary pre-decoded instruction `stream` under `cfg`,
/// `policy` and `steering`, discarding a warm-up and returning
/// statistics for the measured window — the shared core of
/// [`run_experiment_with_steering`] (live emulation, via the blanket
/// `TraceSource` impl for `Iterator<Item = DynInst>`) and the sweep
/// executor's compiled-trace replay path ([`sweep::run_point`]).
///
/// # Panics
///
/// As for [`run_experiment`].
pub fn run_stream<T: TraceSource>(
    stream: T,
    cfg: SimConfig,
    policy: Box<dyn ReconfigPolicy>,
    steering: SteeringKind,
    warmup: u64,
    measure: u64,
) -> SimStats {
    let mut cpu = Processor::with_steering(cfg, stream, policy, steering)
        .unwrap_or_else(|e| panic!("invalid experiment configuration: {e}"));
    cpu.run(warmup).unwrap_or_else(|e| panic!("simulator stalled in warm-up: {e}"));
    let before = *cpu.stats();
    cpu.run(measure).unwrap_or_else(|e| panic!("simulator stalled: {e}"));
    cpu.stats().delta_since(&before)
}

/// One run's measured-window statistics plus its policy's decision
/// trace — the payload of the experiment binaries' `--decisions`
/// dumps.
#[derive(Debug, Clone)]
pub struct RunWithDecisions {
    /// Measured-window statistics, identical to what [`run_stream`]
    /// returns for the same inputs (collecting decisions does not
    /// perturb the simulation).
    pub stats: SimStats,
    /// Every decision the policy recorded, warm-up included, in commit
    /// order (capped at
    /// [`DEFAULT_EVENT_CAP`](clustered_sim::DEFAULT_EVENT_CAP)).
    pub decisions: Vec<DecisionRecord>,
    /// Decision records dropped past the cap.
    pub dropped_decisions: u64,
}

/// [`run_stream`] variant that also collects the policy's decision
/// telemetry through a [`DecisionTrace`] observer.
///
/// # Panics
///
/// As for [`run_experiment`].
pub fn run_stream_decisions<T: TraceSource>(
    stream: T,
    cfg: SimConfig,
    policy: Box<dyn ReconfigPolicy>,
    steering: SteeringKind,
    warmup: u64,
    measure: u64,
) -> RunWithDecisions {
    let mut cpu = Processor::with_observer(cfg, stream, policy, steering, DecisionTrace::new())
        .unwrap_or_else(|e| panic!("invalid experiment configuration: {e}"));
    cpu.run(warmup).unwrap_or_else(|e| panic!("simulator stalled in warm-up: {e}"));
    let before = *cpu.stats();
    cpu.run(measure).unwrap_or_else(|e| panic!("simulator stalled: {e}"));
    let stats = cpu.stats().delta_since(&before);
    let (decisions, dropped_decisions) = cpu.observer().clone().into_decisions();
    RunWithDecisions { stats, decisions, dropped_decisions }
}

/// [`run_experiment_with_steering`] variant collecting decision
/// telemetry (live emulation; see [`run_stream_decisions`]).
///
/// # Panics
///
/// As for [`run_experiment`].
pub fn run_experiment_decisions(
    workload: &Workload,
    cfg: SimConfig,
    policy: Box<dyn ReconfigPolicy>,
    steering: SteeringKind,
    warmup: u64,
    measure: u64,
) -> RunWithDecisions {
    let stream = workload
        .trace()
        .map(|r| r.unwrap_or_else(|e| panic!("workload faulted during simulation: {e}")));
    run_stream_decisions(stream, cfg, policy, steering, warmup, measure)
}

/// Turns an experiment-point label into a safe file stem: every
/// character outside `[A-Za-z0-9._-]` becomes `-`.
pub fn sanitize_label(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') { c } else { '-' })
        .collect()
}

/// Writes one run's decision trace to `<dir>/<sanitized label>.jsonl`
/// (creating the directory) and returns the path. When `provenance`
/// is given, the stream opens with one discriminated header line
/// (`{"event": "provenance", "provenance": {...}}`) so consumers can
/// tie the decisions back to the run that made them; the remaining
/// line schema is [`DecisionRecord::to_json`], documented in
/// EXPERIMENTS.md.
///
/// # Errors
///
/// Propagates filesystem errors from creating the directory or writing
/// the file.
pub fn write_decisions_jsonl(
    dir: &Path,
    label: &str,
    provenance: Option<&Provenance>,
    decisions: &[DecisionRecord],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.jsonl", sanitize_label(label)));
    let mut text = String::new();
    if let Some(p) = provenance {
        text.push_str(&decisions_provenance_header(p));
        text.push('\n');
    }
    text.push_str(&clustered_core::decisions_jsonl(decisions));
    std::fs::write(&path, text)?;
    Ok(path)
}

/// The decision stream's provenance header as one compact JSON line
/// (without the trailing newline): discriminated from decision records
/// by its `event` key.
pub fn decisions_provenance_header(provenance: &Provenance) -> String {
    Json::object()
        .set("event", "provenance")
        .set("provenance", provenance.to_json())
        .to_string_compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustered_sim::FixedPolicy;
    use clustered_workloads::by_name;

    #[test]
    fn run_experiment_measures_requested_window() {
        let w = by_name("gzip").unwrap();
        let s =
            run_experiment(&w, SimConfig::default(), Box::new(FixedPolicy::new(4)), 5_000, 10_000);
        assert!(s.committed >= 10_000);
        assert!(s.committed < 12_000);
        assert!(s.cycles > 0);
    }

    #[test]
    fn env_defaults() {
        assert_eq!(measure_instructions(), DEFAULT_MEASURE);
        assert_eq!(warmup_instructions(), DEFAULT_WARMUP);
    }

    #[test]
    fn decision_run_matches_plain_run_and_collects_records() {
        let w = by_name("gzip").unwrap();
        let policy = || Box::new(clustered_core::IntervalDistantIlp::with_interval(1_000));
        let plain = run_experiment(&w, SimConfig::default(), policy(), 5_000, 20_000);
        let with = run_experiment_decisions(
            &w,
            SimConfig::default(),
            policy(),
            SteeringKind::default(),
            5_000,
            20_000,
        );
        assert_eq!(plain, with.stats, "collecting decisions must not perturb the simulation");
        assert!(!with.decisions.is_empty(), "1k intervals over a 25k run must decide");
        assert_eq!(with.dropped_decisions, 0);
        let mut last = 0;
        for d in &with.decisions {
            assert!(d.commit > last, "records in commit order");
            last = d.commit;
        }
    }

    #[test]
    fn labels_sanitize_to_safe_file_stems() {
        assert_eq!(sanitize_label("gzip/16"), "gzip-16");
        assert_eq!(sanitize_label("art (mono)"), "art--mono-");
        assert_eq!(sanitize_label("plain_name-1.2"), "plain_name-1.2");
    }
}
