//! Figure 3: IPC of fixed 2-, 4-, 8-, and 16-cluster organisations
//! (centralized cache, ring interconnect), plus the monolithic
//! baseline of Table 3 for reference.

use clustered_bench::{measure_instructions, run_experiment, warmup_instructions};
use clustered_sim::{FixedPolicy, SimConfig};
use clustered_stats::{geometric_mean, Table};

fn main() {
    let warmup = warmup_instructions();
    let measure = measure_instructions();
    let counts = [2usize, 4, 8, 16];
    println!("Figure 3: IPCs for fixed cluster organisations");
    println!("(centralized cache, ring interconnect; {measure} measured instructions)\n");

    let mut table = Table::new(&["benchmark", "mono", "2", "4", "8", "16", "best"]);
    let mut per_count: Vec<Vec<f64>> = vec![Vec::new(); counts.len()];
    for w in clustered_workloads::all() {
        let mono = run_experiment(
            &w,
            SimConfig::monolithic(),
            Box::new(FixedPolicy::new(1)),
            warmup,
            measure,
        )
        .ipc();
        let mut cells = vec![w.name().to_string(), format!("{mono:.2}")];
        let mut best = (0usize, 0.0f64);
        for (i, &n) in counts.iter().enumerate() {
            let ipc = run_experiment(
                &w,
                SimConfig::default(),
                Box::new(FixedPolicy::new(n)),
                warmup,
                measure,
            )
            .ipc();
            per_count[i].push(ipc);
            cells.push(format!("{ipc:.2}"));
            if ipc > best.1 {
                best = (n, ipc);
            }
        }
        cells.push(best.0.to_string());
        table.row(&cells);
    }
    let mut means = vec!["geomean".to_string(), String::new()];
    for ipcs in &per_count {
        means.push(format!("{:.2}", geometric_mean(ipcs).unwrap_or(0.0)));
    }
    means.push(String::new());
    table.row(&means);
    println!("{table}");
    println!("Paper shape: distant-ILP codes (djpeg, galgel, mgrid, swim) peak at 16");
    println!("clusters; branch-limited integer codes peak at ~4.");
}
