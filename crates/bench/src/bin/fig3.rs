//! Figure 3: IPC of fixed 2-, 4-, 8-, and 16-cluster organisations
//! (centralized cache, ring interconnect), plus the monolithic
//! baseline of Table 3 for reference.
//!
//! `--json` additionally writes the measurements to
//! `results/fig3.json` (see EXPERIMENTS.md for the schema), and
//! `--decisions DIR` dumps each grid point's policy decision trace to
//! `DIR/<label>.jsonl`.

use clustered_bench::sweep::{capture_for, jobs, run_sweep, run_point_decisions, run_sweep_with, SweepPoint};
use clustered_bench::{
    grid_provenance, measure_instructions, warmup_instructions, write_decisions_jsonl,
    write_results_envelope,
};
use clustered_sim::{FixedPolicy, SimConfig, SimStats};
use clustered_stats::{geometric_mean, Json, Provenance, Table};
use std::path::PathBuf;

/// Scans the raw argument list for `--decisions DIR` and returns the
/// directory (shared by the three experiment binaries' ad-hoc
/// parsers).
fn decisions_dir() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    args.iter().position(|a| a == "--decisions").map(|i| {
        PathBuf::from(args.get(i + 1).unwrap_or_else(|| {
            eprintln!("--decisions expects a directory argument");
            std::process::exit(2);
        }))
    })
}

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let decisions = decisions_dir();
    let warmup = warmup_instructions();
    let measure = measure_instructions();
    let counts = [2usize, 4, 8, 16];
    println!("Figure 3: IPCs for fixed cluster organisations");
    println!("(centralized cache, ring interconnect; {measure} measured instructions)\n");

    // One emulation per workload; the whole (workload × cluster-count)
    // grid replays the shared captures on the sweep worker pool.
    let workloads = clustered_workloads::all();
    let mut points = Vec::new();
    for w in &workloads {
        let trace = capture_for(w, warmup, measure);
        points.push(SweepPoint::new(
            format!("{}/mono", w.name()),
            &trace,
            SimConfig::monolithic(),
            || Box::new(FixedPolicy::new(1)),
            warmup,
            measure,
        ));
        for &n in &counts {
            points.push(SweepPoint::new(
                format!("{}/{n}", w.name()),
                &trace,
                SimConfig::default(),
                move || Box::new(FixedPolicy::new(n)),
                warmup,
                measure,
            ));
        }
    }
    let started = std::time::Instant::now();
    let stats: Vec<SimStats> = match &decisions {
        Some(dir) => {
            let runs = run_sweep_with(&points, jobs(), run_point_decisions);
            for (point, run) in points.iter().zip(&runs) {
                // The label's `/suffix` names the fixed cluster count.
                let policy = match point.label.rsplit('/').next() {
                    Some("mono") => "fixed1".to_string(),
                    Some(n) => format!("fixed{n}"),
                    None => "fixed".to_string(),
                };
                let prov = Provenance::new(
                    point.trace.name(),
                    Some(point.trace_checksum),
                    point.config_digest,
                    &policy,
                );
                if let Err(e) = write_decisions_jsonl(dir, &point.label, Some(&prov), &run.decisions)
                {
                    eprintln!("cannot write decision trace for {}: {e}", point.label);
                    std::process::exit(1);
                }
            }
            println!("wrote {} decision traces to {}\n", runs.len(), dir.display());
            runs.iter().map(|r| r.stats).collect()
        }
        None => run_sweep(&points),
    };

    let mut table = Table::new(&["benchmark", "mono", "2", "4", "8", "16", "best"]);
    let mut per_count: Vec<Vec<f64>> = vec![Vec::new(); counts.len()];
    let mut workload_docs: Vec<Json> = Vec::new();
    for (w, chunk) in workloads.iter().zip(stats.chunks(1 + counts.len())) {
        let mono = chunk[0].ipc();
        let mut cells = vec![w.name().to_string(), format!("{mono:.2}")];
        let mut best = (0usize, 0.0f64);
        let mut ipcs = Json::object();
        for (i, &n) in counts.iter().enumerate() {
            let ipc = chunk[1 + i].ipc();
            per_count[i].push(ipc);
            cells.push(format!("{ipc:.2}"));
            ipcs = ipcs.set(&n.to_string(), ipc);
            if ipc > best.1 {
                best = (n, ipc);
            }
        }
        cells.push(best.0.to_string());
        table.row(&cells);
        workload_docs.push(
            Json::object()
                .set("name", w.name())
                .set("monolithic_ipc", mono)
                .set("ipc_by_clusters", ipcs)
                .set("best_clusters", best.0),
        );
    }
    let mut means = vec!["geomean".to_string(), String::new()];
    let mut geomeans = Json::object();
    for (ipcs, &n) in per_count.iter().zip(&counts) {
        let g = geometric_mean(ipcs).unwrap_or(0.0);
        means.push(format!("{g:.2}"));
        geomeans = geomeans.set(&n.to_string(), g);
    }
    means.push(String::new());
    table.row(&means);
    println!("{table}");
    println!("Paper shape: distant-ILP codes (djpeg, galgel, mgrid, swim) peak at 16");
    println!("clusters; branch-limited integer codes peak at ~4.");

    if json {
        let doc = Json::object()
            .set("figure", "fig3")
            .set("measure_instructions", measure)
            .set("warmup_instructions", warmup)
            .set(
                "cluster_counts",
                Json::Arr(counts.iter().map(|&n| Json::from(n)).collect()),
            )
            .set("workloads", Json::Arr(workload_docs))
            .set("geomean_by_clusters", geomeans);
        let prov = grid_provenance("fig3", &SimConfig::default())
            .with_wall_seconds(started.elapsed().as_secs_f64());
        match write_results_envelope("fig3", &prov, doc) {
            Ok(path) => println!("\nwrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write results/fig3.json: {e}");
                std::process::exit(1);
            }
        }
    }
}
