//! Table 3: benchmark description — measured base IPC on the
//! monolithic processor (one cluster holding all 16 clusters' worth of
//! resources, free bypassing) and the branch-misprediction interval,
//! side by side with the values the paper reports for the original
//! SPEC2k/Mediabench programs.
//!
//! `--json` additionally writes the measurements to
//! `results/table3.json` (enveloped, see EXPERIMENTS.md).

use clustered_bench::sweep::{capture_for, run_sweep, SweepPoint};
use clustered_bench::{
    grid_provenance, measure_instructions, warmup_instructions, write_results_envelope,
};
use clustered_sim::{FixedPolicy, SimConfig};
use clustered_stats::{Json, Table};

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let warmup = warmup_instructions();
    let measure = measure_instructions();
    let started = std::time::Instant::now();
    println!("Table 3: benchmark description ({measure} measured instructions)\n");
    let mut table = Table::new(&[
        "benchmark",
        "suite",
        "IPC",
        "paper IPC",
        "mispred interval",
        "paper interval",
        "memref %",
        "branch %",
    ]);
    let workloads = clustered_workloads::all();
    let points: Vec<SweepPoint> = workloads
        .iter()
        .map(|w| {
            let trace = capture_for(w, warmup, measure);
            SweepPoint::new(
                format!("{}/mono", w.name()),
                &trace,
                SimConfig::monolithic(),
                || Box::new(FixedPolicy::new(1)),
                warmup,
                measure,
            )
        })
        .collect();
    let stats = run_sweep(&points);
    let mut workload_docs: Vec<Json> = Vec::new();
    for (w, s) in workloads.iter().zip(stats) {
        let paper = w.paper();
        table.row(&[
            w.name().to_string(),
            paper.class.suite_name().to_string(),
            format!("{:.2}", s.ipc()),
            format!("{:.2}", paper.base_ipc),
            format!("{:.0}", s.mispredict_interval()),
            paper.mispredict_interval.to_string(),
            format!("{:.1}", 100.0 * s.memrefs as f64 / s.committed as f64),
            format!("{:.1}", 100.0 * s.branches as f64 / s.committed as f64),
        ]);
        workload_docs.push(
            Json::object()
                .set("name", w.name())
                .set("suite", paper.class.suite_name())
                .set("ipc", s.ipc())
                .set("paper_ipc", paper.base_ipc)
                .set("mispredict_interval", s.mispredict_interval())
                .set("paper_mispredict_interval", u64::from(paper.mispredict_interval))
                .set("memref_pct", 100.0 * s.memrefs as f64 / s.committed as f64)
                .set("branch_pct", 100.0 * s.branches as f64 / s.committed as f64),
        );
    }
    println!("{table}");
    println!("The kernels are engineered to reproduce each benchmark's metric profile");
    println!("(branch-misprediction interval ordering, memory intensity, distant ILP),");
    println!("not its absolute IPC; see DESIGN.md for the substitution rationale.");

    if json {
        let doc = Json::object()
            .set("figure", "table3")
            .set("measure_instructions", measure)
            .set("warmup_instructions", warmup)
            .set("workloads", Json::Arr(workload_docs));
        let prov = grid_provenance("table3", &SimConfig::monolithic())
            .with_wall_seconds(started.elapsed().as_secs_f64());
        match write_results_envelope("table3", &prov, doc) {
            Ok(path) => println!("\nwrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write results/table3.json: {e}");
                std::process::exit(1);
            }
        }
    }
}
