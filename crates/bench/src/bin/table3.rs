//! Table 3: benchmark description — measured base IPC on the
//! monolithic processor (one cluster holding all 16 clusters' worth of
//! resources, free bypassing) and the branch-misprediction interval,
//! side by side with the values the paper reports for the original
//! SPEC2k/Mediabench programs.

use clustered_bench::sweep::{capture_for, run_sweep, SweepPoint};
use clustered_bench::{measure_instructions, warmup_instructions};
use clustered_sim::{FixedPolicy, SimConfig};
use clustered_stats::Table;

fn main() {
    let warmup = warmup_instructions();
    let measure = measure_instructions();
    println!("Table 3: benchmark description ({measure} measured instructions)\n");
    let mut table = Table::new(&[
        "benchmark",
        "suite",
        "IPC",
        "paper IPC",
        "mispred interval",
        "paper interval",
        "memref %",
        "branch %",
    ]);
    let workloads = clustered_workloads::all();
    let points: Vec<SweepPoint> = workloads
        .iter()
        .map(|w| {
            let trace = capture_for(w, warmup, measure);
            SweepPoint::new(
                format!("{}/mono", w.name()),
                &trace,
                SimConfig::monolithic(),
                || Box::new(FixedPolicy::new(1)),
                warmup,
                measure,
            )
        })
        .collect();
    let stats = run_sweep(&points);
    for (w, s) in workloads.iter().zip(stats) {
        let paper = w.paper();
        table.row(&[
            w.name().to_string(),
            paper.class.suite_name().to_string(),
            format!("{:.2}", s.ipc()),
            format!("{:.2}", paper.base_ipc),
            format!("{:.0}", s.mispredict_interval()),
            paper.mispredict_interval.to_string(),
            format!("{:.1}", 100.0 * s.memrefs as f64 / s.committed as f64),
            format!("{:.1}", 100.0 * s.branches as f64 / s.committed as f64),
        ]);
    }
    println!("{table}");
    println!("The kernels are engineered to reproduce each benchmark's metric profile");
    println!("(branch-misprediction interval ordering, memory intensity, distant ILP),");
    println!("not its absolute IPC; see DESIGN.md for the substitution rationale.");
}
