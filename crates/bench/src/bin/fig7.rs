//! Figure 7: the decentralized cache model — static 4/16 plus the
//! interval-based schemes (with exploration; without exploration at
//! two interval lengths). Reconfiguration here stalls the pipeline and
//! flushes the L1, so the dynamic schemes must hold reconfiguration
//! frequency down.

use clustered_bench::{measure_instructions, run_experiment, warmup_instructions};
use clustered_core::{IntervalDistantIlp, IntervalExplore, IntervalExploreConfig};
use clustered_sim::{CacheModel, FixedPolicy, ReconfigPolicy, SimConfig};
use clustered_stats::{geometric_mean, percent_change, Table};

/// A named constructor for one policy column of the figure.
type PolicyFactory = Box<dyn Fn() -> Box<dyn ReconfigPolicy>>;

fn main() {
    let warmup = warmup_instructions();
    let measure = measure_instructions();
    let max_interval = (measure / 4).max(40_000);
    let mut cfg = SimConfig::default();
    cfg.cache.model = CacheModel::Decentralized;
    println!("Figure 7: interval-based schemes on the decentralized cache");
    println!("(per-cluster banks + bank prediction, ring; {measure} measured instructions)\n");

    let policies: Vec<(&str, PolicyFactory)> = vec![
        ("fix4", Box::new(|| Box::new(FixedPolicy::new(4)))),
        ("fix16", Box::new(|| Box::new(FixedPolicy::new(16)))),
        (
            "explore",
            Box::new(move || {
                Box::new(IntervalExplore::new(IntervalExploreConfig {
                    max_interval,
                    ..IntervalExploreConfig::default()
                }))
            }),
        ),
        ("noexp-1K", Box::new(|| Box::new(IntervalDistantIlp::with_interval(1_000)))),
        ("noexp-10K", Box::new(|| Box::new(IntervalDistantIlp::with_interval(10_000)))),
    ];

    let mut table = Table::new(&[
        "benchmark",
        "fix4",
        "fix16",
        "explore",
        "noexp-1K",
        "noexp-10K",
        "flush-wb",
        "bank-acc",
    ]);
    let mut ipcs: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for w in clustered_workloads::all() {
        let mut cells = vec![w.name().to_string()];
        let mut flush_writebacks = 0;
        let mut bank_acc = 0.0;
        for (i, (name, make)) in policies.iter().enumerate() {
            let stats = run_experiment(&w, cfg, make(), warmup, measure);
            ipcs[i].push(stats.ipc());
            cells.push(format!("{:.2}", stats.ipc()));
            if *name == "explore" {
                flush_writebacks = stats.flush_writebacks;
                bank_acc = stats.bank_accuracy();
            }
        }
        cells.push(flush_writebacks.to_string());
        cells.push(format!("{bank_acc:.2}"));
        table.row(&cells);
    }
    let mut means = vec!["geomean".to_string()];
    for series in &ipcs {
        means.push(format!("{:.2}", geometric_mean(series).unwrap_or(0.0)));
    }
    means.extend([String::new(), String::new()]);
    table.row(&means);
    println!("{table}");

    let g = |i: usize| geometric_mean(&ipcs[i]).unwrap_or(0.0);
    let best_static = g(0).max(g(1));
    println!(
        "explore vs best static organisation: {:+.1}%  (paper: +10%)",
        percent_change(g(2), best_static).unwrap_or(0.0)
    );
    println!("\nPaper shape: the trend matches the centralized model; because every");
    println!("reconfiguration costs a drain + L1 flush, the exploration scheme (few");
    println!("reconfigurations) is preferred and flush writebacks stay low.");
}
