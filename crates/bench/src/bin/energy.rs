//! The paper's energy argument (§1/§8): on average 8.3 of 16 clusters
//! are disabled by the reconfiguration schemes, so gating their supply
//! saves most of the leakage a static 16-cluster machine burns while
//! single-thread performance *improves*.
//!
//! This binary runs the interval-exploration policy on every workload
//! and reports mean disabled clusters plus leakage/total energy versus
//! the fixed 16-cluster base, under the normalised energy model in
//! `clustered_sim::estimate_energy`.
//!
//! `--json` additionally writes the measurements to
//! `results/energy.json` (enveloped, see EXPERIMENTS.md).

use clustered_bench::sweep::{capture_for, run_sweep, SweepPoint};
use clustered_bench::{
    grid_provenance, measure_instructions, warmup_instructions, write_results_envelope,
};
use clustered_core::{IntervalExplore, IntervalExploreConfig};
use clustered_sim::{estimate_energy, EnergyParams, FixedPolicy, SimConfig};
use clustered_stats::{Json, Table};

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let warmup = warmup_instructions();
    let measure = measure_instructions();
    let max_interval = (measure / 4).max(40_000);
    let params = EnergyParams::default();
    let started = std::time::Instant::now();
    println!("Energy impact of dynamic cluster allocation");
    println!("({measure} measured instructions; power-gated disabled clusters)\n");

    let mut table = Table::new(&[
        "benchmark",
        "avg disabled",
        "leakage vs fix16",
        "total vs fix16",
        "IPC vs fix16",
    ]);
    let mut disabled_sum = 0.0;
    let workloads = clustered_workloads::all();
    let mut points = Vec::new();
    for w in &workloads {
        let trace = capture_for(w, warmup, measure);
        points.push(SweepPoint::new(
            format!("{}/fixed16", w.name()),
            &trace,
            SimConfig::default(),
            || Box::new(FixedPolicy::new(16)),
            warmup,
            measure,
        ));
        points.push(SweepPoint::new(
            format!("{}/explore", w.name()),
            &trace,
            SimConfig::default(),
            move || {
                Box::new(IntervalExplore::new(IntervalExploreConfig {
                    max_interval,
                    ..IntervalExploreConfig::default()
                }))
            },
            warmup,
            measure,
        ));
    }
    let stats = run_sweep(&points);
    let mut workload_docs: Vec<Json> = Vec::new();
    for (w, pair) in workloads.iter().zip(stats.chunks(2)) {
        let (fixed, dynamic) = (pair[0], pair[1]);
        let e_fixed = estimate_energy(&fixed, &params);
        let e_dynamic = estimate_energy(&dynamic, &params);
        let disabled = 16.0 - dynamic.avg_active_clusters();
        disabled_sum += disabled;
        let leakage_ratio = (e_dynamic.active_leakage + e_dynamic.idle_leakage)
            / (e_fixed.active_leakage + e_fixed.idle_leakage).max(1e-9);
        let total_ratio = e_dynamic.total() / e_fixed.total().max(1e-9);
        let ipc_ratio = dynamic.ipc() / fixed.ipc().max(1e-9);
        table.row(&[
            w.name().to_string(),
            format!("{disabled:.1}"),
            format!("{:.0}%", 100.0 * leakage_ratio),
            format!("{:.0}%", 100.0 * total_ratio),
            format!("{:.0}%", 100.0 * ipc_ratio),
        ]);
        workload_docs.push(
            Json::object()
                .set("name", w.name())
                .set("avg_disabled_clusters", disabled)
                .set("leakage_vs_fixed16", leakage_ratio)
                .set("total_energy_vs_fixed16", total_ratio)
                .set("ipc_vs_fixed16", ipc_ratio),
        );
    }
    let mean_disabled = disabled_sum / clustered_workloads::NAMES.len() as f64;
    println!("{table}");
    println!("mean disabled clusters: {mean_disabled:.1} of 16  (paper: 8.3)");
    println!("\nDisabled clusters can instead host other threads: the same allocation");
    println!("that optimises one thread frees, on average, half the machine.");

    if json {
        let doc = Json::object()
            .set("figure", "energy")
            .set("measure_instructions", measure)
            .set("warmup_instructions", warmup)
            .set("workloads", Json::Arr(workload_docs))
            .set("mean_disabled_clusters", mean_disabled);
        let prov = grid_provenance("energy", &SimConfig::default())
            .with_wall_seconds(started.elapsed().as_secs_f64());
        match write_results_envelope("energy", &prov, doc) {
            Ok(path) => println!("\nwrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write results/energy.json: {e}");
                std::process::exit(1);
            }
        }
    }
}
