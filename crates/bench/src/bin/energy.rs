//! The paper's energy argument (§1/§8): on average 8.3 of 16 clusters
//! are disabled by the reconfiguration schemes, so gating their supply
//! saves most of the leakage a static 16-cluster machine burns while
//! single-thread performance *improves*.
//!
//! This binary runs the interval-exploration policy on every workload
//! and reports mean disabled clusters plus leakage/total energy versus
//! the fixed 16-cluster base, under the normalised energy model in
//! `clustered_sim::estimate_energy`.

use clustered_bench::sweep::{capture_for, run_sweep, SweepPoint};
use clustered_bench::{measure_instructions, warmup_instructions};
use clustered_core::{IntervalExplore, IntervalExploreConfig};
use clustered_sim::{estimate_energy, EnergyParams, FixedPolicy, SimConfig};
use clustered_stats::Table;

fn main() {
    let warmup = warmup_instructions();
    let measure = measure_instructions();
    let max_interval = (measure / 4).max(40_000);
    let params = EnergyParams::default();
    println!("Energy impact of dynamic cluster allocation");
    println!("({measure} measured instructions; power-gated disabled clusters)\n");

    let mut table = Table::new(&[
        "benchmark",
        "avg disabled",
        "leakage vs fix16",
        "total vs fix16",
        "IPC vs fix16",
    ]);
    let mut disabled_sum = 0.0;
    let workloads = clustered_workloads::all();
    let mut points = Vec::new();
    for w in &workloads {
        let trace = capture_for(w, warmup, measure);
        points.push(SweepPoint::new(
            format!("{}/fixed16", w.name()),
            &trace,
            SimConfig::default(),
            || Box::new(FixedPolicy::new(16)),
            warmup,
            measure,
        ));
        points.push(SweepPoint::new(
            format!("{}/explore", w.name()),
            &trace,
            SimConfig::default(),
            move || {
                Box::new(IntervalExplore::new(IntervalExploreConfig {
                    max_interval,
                    ..IntervalExploreConfig::default()
                }))
            },
            warmup,
            measure,
        ));
    }
    let stats = run_sweep(&points);
    for (w, pair) in workloads.iter().zip(stats.chunks(2)) {
        let (fixed, dynamic) = (pair[0], pair[1]);
        let e_fixed = estimate_energy(&fixed, &params);
        let e_dynamic = estimate_energy(&dynamic, &params);
        let disabled = 16.0 - dynamic.avg_active_clusters();
        disabled_sum += disabled;
        table.row(&[
            w.name().to_string(),
            format!("{disabled:.1}"),
            format!(
                "{:.0}%",
                100.0 * (e_dynamic.active_leakage + e_dynamic.idle_leakage)
                    / (e_fixed.active_leakage + e_fixed.idle_leakage).max(1e-9)
            ),
            format!("{:.0}%", 100.0 * e_dynamic.total() / e_fixed.total().max(1e-9)),
            format!("{:.0}%", 100.0 * dynamic.ipc() / fixed.ipc().max(1e-9)),
        ]);
    }
    println!("{table}");
    println!(
        "mean disabled clusters: {:.1} of 16  (paper: 8.3)",
        disabled_sum / clustered_workloads::NAMES.len() as f64
    );
    println!("\nDisabled clusters can instead host other threads: the same allocation");
    println!("that optimises one thread frees, on average, half the machine.");
}
