//! The paper's multithreading argument (§1/§8): clusters freed by the
//! single-thread allocation can be dedicated to other threads, so a
//! partitioned machine beats time-multiplexing threads over the whole
//! chip.
//!
//! Static partitioning is approximated by running each thread on an
//! independent machine sized to its partition (the paper, too, only
//! argues this qualitatively): two threads on disjoint 8-cluster
//! halves versus the same two threads run back-to-back on all 16
//! clusters. Cross-thread interconnect/L2 interference is not
//! modelled, which *favours* partitioning slightly; the effect being
//! demonstrated (throughput from avoiding cross-thread interference
//! and from diminishing returns of width) dominates it.

use clustered_bench::{measure_instructions, run_experiment, warmup_instructions};
use clustered_sim::{FixedPolicy, SimConfig};
use clustered_stats::Table;

fn partitioned_config(clusters: usize) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.clusters.count = clusters;
    cfg.cache.lsq_per_cluster = SimConfig::default().cache.lsq_per_cluster;
    cfg
}

fn main() {
    let warmup = warmup_instructions();
    let measure = measure_instructions() / 2; // two runs per pairing
    println!("Cluster partitioning for two-thread throughput");
    println!("({measure} measured instructions per thread)\n");

    // Pair a distant-ILP thread with a communication-bound one, plus a
    // like-with-like pairing.
    let pairings = [("swim", "vpr"), ("djpeg", "parser"), ("gzip", "crafty")];
    let mut table = Table::new(&[
        "thread pair",
        "time-mux 16 (IPC sum)",
        "8+8 split",
        "12+4 split",
        "best split gain",
    ]);
    for (a, b) in pairings {
        let wa = clustered_workloads::by_name(a).expect("known workload");
        let wb = clustered_workloads::by_name(b).expect("known workload");
        // Time multiplexing: each thread gets the whole machine for
        // half the time → throughput is the mean of the solo IPCs.
        let solo_a =
            run_experiment(&wa, SimConfig::default(), Box::new(FixedPolicy::new(16)), warmup, measure)
                .ipc();
        let solo_b =
            run_experiment(&wb, SimConfig::default(), Box::new(FixedPolicy::new(16)), warmup, measure)
                .ipc();
        let timemux = (solo_a + solo_b) / 2.0;
        // Even split: both threads run concurrently on 8 clusters each.
        let split = |ca: usize, cb: usize| {
            let ia = run_experiment(
                &wa,
                partitioned_config(ca),
                Box::new(FixedPolicy::new(ca)),
                warmup,
                measure,
            )
            .ipc();
            let ib = run_experiment(
                &wb,
                partitioned_config(cb),
                Box::new(FixedPolicy::new(cb)),
                warmup,
                measure,
            )
            .ipc();
            ia + ib
        };
        let even = split(8, 8);
        // Asymmetric split guided by the single-thread preference: the
        // distant-ILP thread gets 12, the narrow one 4.
        let skewed = split(12, 4).max(split(4, 12));
        let best = even.max(skewed);
        table.row(&[
            format!("{a}+{b}"),
            format!("{timemux:.2}"),
            format!("{even:.2}"),
            format!("{skewed:.2}"),
            format!("{:+.0}%", 100.0 * (best / timemux - 1.0)),
        ]);
    }
    println!("{table}");
    println!("Paper claim (qualitative): after optimising one thread, more than");
    println!("eight clusters remain for others, and dedicating cluster subsets to");
    println!("threads avoids cross-thread interference — partitioned throughput");
    println!("beats time-multiplexing the monolithic-width machine.");
}
