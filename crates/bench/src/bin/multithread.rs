//! The paper's multithreading argument (§1/§8): clusters freed by the
//! single-thread allocation can be dedicated to other threads, so a
//! partitioned machine beats time-multiplexing threads over the whole
//! chip.
//!
//! Static partitioning is approximated by running each thread on an
//! independent machine sized to its partition (the paper, too, only
//! argues this qualitatively): two threads on disjoint 8-cluster
//! halves versus the same two threads run back-to-back on all 16
//! clusters. Cross-thread interconnect/L2 interference is not
//! modelled, which *favours* partitioning slightly; the effect being
//! demonstrated (throughput from avoiding cross-thread interference
//! and from diminishing returns of width) dominates it.

//!
//! `--json` additionally writes the measurements to
//! `results/multithread.json` (enveloped, see EXPERIMENTS.md).

use clustered_bench::sweep::{capture_for, run_sweep, SweepPoint};
use clustered_bench::{
    grid_provenance, measure_instructions, warmup_instructions, write_results_envelope,
};
use clustered_sim::{FixedPolicy, SimConfig};
use clustered_stats::{Json, Table};

fn partitioned_config(clusters: usize) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.clusters.count = clusters;
    cfg.cache.lsq_per_cluster = SimConfig::default().cache.lsq_per_cluster;
    cfg
}

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let warmup = warmup_instructions();
    let measure = measure_instructions() / 2; // two runs per pairing
    let started = std::time::Instant::now();
    println!("Cluster partitioning for two-thread throughput");
    println!("({measure} measured instructions per thread)\n");

    // Pair a distant-ILP thread with a communication-bound one, plus a
    // like-with-like pairing.
    let pairings = [("swim", "vpr"), ("djpeg", "parser"), ("gzip", "crafty")];
    let mut table = Table::new(&[
        "thread pair",
        "time-mux 16 (IPC sum)",
        "8+8 split",
        "12+4 split",
        "best split gain",
    ]);
    // Every (thread, cluster-allocation) run is independent: build the
    // whole grid up front — 8 points per pairing — and let the sweep
    // executor replay the shared per-thread captures concurrently.
    let mut points = Vec::new();
    for (a, b) in pairings {
        let wa = clustered_workloads::by_name(a).expect("known workload");
        let wb = clustered_workloads::by_name(b).expect("known workload");
        let ta = capture_for(&wa, warmup, measure);
        let tb = capture_for(&wb, warmup, measure);
        for (name, trace, clusters, cfg) in [
            (a, &ta, 16usize, SimConfig::default()),
            (b, &tb, 16, SimConfig::default()),
            (a, &ta, 8, partitioned_config(8)),
            (b, &tb, 8, partitioned_config(8)),
            (a, &ta, 12, partitioned_config(12)),
            (b, &tb, 4, partitioned_config(4)),
            (a, &ta, 4, partitioned_config(4)),
            (b, &tb, 12, partitioned_config(12)),
        ] {
            points.push(SweepPoint::new(
                format!("{name}/{clusters}"),
                trace,
                cfg,
                move || Box::new(FixedPolicy::new(clusters)),
                warmup,
                measure,
            ));
        }
    }
    let ipcs: Vec<f64> = run_sweep(&points).iter().map(|s| s.ipc()).collect();

    let mut pairing_docs: Vec<Json> = Vec::new();
    for ((a, b), run) in pairings.iter().zip(ipcs.chunks(8)) {
        // Time multiplexing: each thread gets the whole machine for
        // half the time → throughput is the mean of the solo IPCs.
        let timemux = (run[0] + run[1]) / 2.0;
        // Even split: both threads run concurrently on 8 clusters each.
        let even = run[2] + run[3];
        // Asymmetric split guided by the single-thread preference: the
        // distant-ILP thread gets 12, the narrow one 4.
        let skewed = (run[4] + run[5]).max(run[6] + run[7]);
        let best = even.max(skewed);
        table.row(&[
            format!("{a}+{b}"),
            format!("{timemux:.2}"),
            format!("{even:.2}"),
            format!("{skewed:.2}"),
            format!("{:+.0}%", 100.0 * (best / timemux - 1.0)),
        ]);
        pairing_docs.push(
            Json::object()
                .set("threads", Json::Arr(vec![Json::from(*a), Json::from(*b)]))
                .set("timemux_ipc_sum", timemux)
                .set("split_8_8_ipc_sum", even)
                .set("split_12_4_ipc_sum", skewed)
                .set("best_split_gain", best / timemux - 1.0),
        );
    }
    println!("{table}");
    println!("Paper claim (qualitative): after optimising one thread, more than");
    println!("eight clusters remain for others, and dedicating cluster subsets to");
    println!("threads avoids cross-thread interference — partitioned throughput");
    println!("beats time-multiplexing the monolithic-width machine.");

    if json {
        let doc = Json::object()
            .set("figure", "multithread")
            .set("measure_instructions", measure)
            .set("warmup_instructions", warmup)
            .set("pairings", Json::Arr(pairing_docs));
        let prov = grid_provenance("multithread", &SimConfig::default())
            .with_wall_seconds(started.elapsed().as_secs_f64());
        match write_results_envelope("multithread", &prov, doc) {
            Ok(path) => println!("\nwrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write results/multithread.json: {e}");
                std::process::exit(1);
            }
        }
    }
}
