//! `bench-cmp`: diff two bench harness JSON files with a noise
//! threshold; exit nonzero on regression.
//!
//! ```text
//! bench-cmp BASELINE.json CURRENT.json [--threshold 0.25] [--metric min] [--json]
//! ```
//!
//! Exit codes: 0 = no regression, 1 = regression (or a baseline case
//! missing from the current results), 2 = usage or I/O error. CI runs
//! this against the committed `results/BENCH_*.json` trajectory (see
//! `scripts/ci.sh`).

use clustered_bench::cmp::{compare_files, CmpMetric, DEFAULT_THRESHOLD};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: bench-cmp BASELINE.json CURRENT.json \
                     [--threshold FRACTION] [--metric min|median|mean] [--json]";

fn run() -> Result<bool, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut metric = CmpMetric::default();
    let mut as_json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = args.next().ok_or("--threshold needs a value")?;
                threshold = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or_else(|| format!("invalid threshold `{v}` (fraction, e.g. 0.25)"))?;
            }
            "--metric" => {
                metric = CmpMetric::from_arg(&args.next().ok_or("--metric needs a value")?)?;
            }
            "--json" => as_json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(true);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{USAGE}"));
            }
            path => files.push(PathBuf::from(path)),
        }
    }
    let [baseline, current] = files.as_slice() else {
        return Err(format!("expected exactly two files\n{USAGE}"));
    };
    let cmp = compare_files(baseline, current, metric, threshold)?;
    if as_json {
        println!("{}", cmp.to_json().to_string_pretty());
    } else {
        print!("{}", cmp.render());
    }
    Ok(cmp.passed())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("bench-cmp: {e}");
            ExitCode::from(2)
        }
    }
}
