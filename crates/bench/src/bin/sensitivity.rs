//! Section 6 sensitivity analysis: the interval-based scheme with
//! exploration against the static base cases while varying
//!
//! * per-cluster resources (10 IQ / 20 regs; 20 IQ / 40 regs),
//! * functional units per cluster (2 of each),
//! * interconnect hop latency (2 cycles per hop).
//!
//! The paper reports dynamic gains of 8%, 13%, ~11%, and 23%
//! respectively — fewer per-cluster resources favour the wide static
//! base, more resources and slower wires favour the dynamic scheme.

//!
//! `--json` additionally writes the measurements to
//! `results/sensitivity.json` (enveloped, see EXPERIMENTS.md).

use clustered_bench::{
    grid_provenance, measure_instructions, run_experiment, warmup_instructions,
    write_results_envelope,
};
use clustered_core::{IntervalExplore, IntervalExploreConfig};
use clustered_sim::{FixedPolicy, SimConfig};
use clustered_stats::{geometric_mean, percent_change, Json, Table};

fn variant(name: &str) -> SimConfig {
    let mut cfg = SimConfig::default();
    match name {
        "baseline" => {}
        "small-clusters" => {
            cfg.clusters.int_iq = 10;
            cfg.clusters.fp_iq = 10;
            cfg.clusters.int_regs = 20;
            cfg.clusters.fp_regs = 20;
        }
        "large-clusters" => {
            cfg.clusters.int_iq = 20;
            cfg.clusters.fp_iq = 20;
            cfg.clusters.int_regs = 40;
            cfg.clusters.fp_regs = 40;
        }
        "more-fus" => {
            cfg.clusters.int_alu = 2;
            cfg.clusters.int_muldiv = 2;
            cfg.clusters.fp_alu = 2;
            cfg.clusters.fp_muldiv = 2;
        }
        "slow-wires" => cfg.interconnect.hop_latency = 2,
        other => panic!("unknown variant {other}"),
    }
    cfg
}

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let warmup = warmup_instructions();
    let measure = measure_instructions();
    let max_interval = (measure / 4).max(40_000);
    let started = std::time::Instant::now();
    println!("Section 6: sensitivity of the dynamic scheme to processor parameters");
    println!("({measure} measured instructions per run)\n");

    let mut table =
        Table::new(&["variant", "fix4", "fix16", "explore", "gain", "paper gain"]);
    let paper_gain =
        [("baseline", "+11%"), ("small-clusters", "+8%"), ("large-clusters", "+13%"),
         ("more-fus", "~+11%"), ("slow-wires", "+23%")];
    let mut variant_docs: Vec<Json> = Vec::new();
    for (name, paper) in paper_gain {
        let cfg = variant(name);
        let mut series = [Vec::new(), Vec::new(), Vec::new()];
        for w in clustered_workloads::all() {
            series[0].push(
                run_experiment(&w, cfg, Box::new(FixedPolicy::new(4)), warmup, measure).ipc(),
            );
            series[1].push(
                run_experiment(&w, cfg, Box::new(FixedPolicy::new(16)), warmup, measure).ipc(),
            );
            series[2].push(
                run_experiment(
                    &w,
                    cfg,
                    Box::new(IntervalExplore::new(IntervalExploreConfig {
                        max_interval,
                        ..IntervalExploreConfig::default()
                    })),
                    warmup,
                    measure,
                )
                .ipc(),
            );
        }
        let g: Vec<f64> =
            series.iter().map(|s| geometric_mean(s).unwrap_or(0.0)).collect();
        let gain = percent_change(g[2], g[0].max(g[1])).unwrap_or(0.0);
        table.row(&[
            name.to_string(),
            format!("{:.2}", g[0]),
            format!("{:.2}", g[1]),
            format!("{:.2}", g[2]),
            format!("{gain:+.1}%"),
            paper.to_string(),
        ]);
        variant_docs.push(
            Json::object()
                .set("name", name)
                .set("fixed4_geomean_ipc", g[0])
                .set("fixed16_geomean_ipc", g[1])
                .set("explore_geomean_ipc", g[2])
                .set("gain_pct", gain)
                .set("paper_gain", paper),
        );
    }
    println!("{table}");
    println!("Paper shape: with fewer per-cluster resources the wide base improves");
    println!("(smaller dynamic gain); with larger clusters or costlier hops the");
    println!("narrow configurations win more often and the dynamic gain grows.");

    if json {
        let doc = Json::object()
            .set("figure", "sensitivity")
            .set("measure_instructions", measure)
            .set("warmup_instructions", warmup)
            .set("variants", Json::Arr(variant_docs));
        let prov = grid_provenance("sensitivity", &SimConfig::default())
            .with_wall_seconds(started.elapsed().as_secs_f64());
        match write_results_envelope("sensitivity", &prov, doc) {
            Ok(path) => println!("\nwrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write results/sensitivity.json: {e}");
                std::process::exit(1);
            }
        }
    }
}
