//! Tables 1 and 2: the simulated processor and cache parameters.
//!
//! These are configuration constants rather than measurements; the
//! binary prints the values actually used by `SimConfig::default()` so
//! they can be diffed against the paper.
//!
//! `--json` additionally writes the raw parameter values to
//! `results/tables.json` (see EXPERIMENTS.md for the schema).

use clustered_bench::{grid_provenance, write_results_envelope};
use clustered_sim::{CacheParams, SimConfig};
use clustered_stats::{Json, Table};

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let cfg = SimConfig::default();
    println!("Table 1: Simplescalar-style simulator parameters\n");
    let mut t1 = Table::new(&["parameter", "value"]);
    let f = &cfg.frontend;
    let b = &cfg.bpred;
    let c = &cfg.clusters;
    let rows: Vec<(String, String)> = vec![
        ("Fetch queue size".into(), f.fetch_queue.to_string()),
        ("Branch predictor".into(), "comb. of bimodal and 2-level".into()),
        ("Bimodal predictor size".into(), b.bimodal_size.to_string()),
        (
            "Level 1 predictor".into(),
            format!("{} entries, history {}", b.l1_size, b.history_bits),
        ),
        ("Level 2 predictor".into(), format!("{} entries", b.l2_size)),
        ("BTB size".into(), format!("{} sets, {}-way", b.btb_sets, b.btb_ways)),
        (
            "Branch mispredict penalty".into(),
            format!("at least {} cycles", f.mispredict_penalty),
        ),
        (
            "Fetch width".into(),
            format!("{} (across up to {} basic blocks)", f.fetch_width, f.max_basic_blocks),
        ),
        ("Dispatch and commit width".into(), f.dispatch_width.to_string()),
        (
            "Issue queue size".into(),
            format!("{} in each cluster (int and fp, each)", c.int_iq),
        ),
        (
            "Register file size".into(),
            format!("{} in each cluster (int and fp, each)", c.int_regs),
        ),
        ("Re-order Buffer (ROB) size".into(), f.rob_size.to_string()),
        ("Integer ALUs/mult-div".into(), format!("{}/{} (in each cluster)", c.int_alu, c.int_muldiv)),
        ("FP ALUs/mult-div".into(), format!("{}/{} (in each cluster)", c.fp_alu, c.fp_muldiv)),
        (
            "L2 unified cache".into(),
            format!(
                "{}MB {}-way, {} cycles",
                cfg.cache.l2_size / (1024 * 1024),
                cfg.cache.l2_assoc,
                cfg.cache.l2_latency
            ),
        ),
        (
            "Memory latency".into(),
            format!("{} cycles for the first chunk", cfg.cache.mem_latency),
        ),
    ];
    for (k, v) in rows {
        t1.row(&[k, v]);
    }
    println!("{t1}");

    println!("Table 2: cache parameters for the two L1 organisations\n");
    let mut t2 = Table::new(&["parameter", "centralized", "decentralized (per cluster)"]);
    let cache: CacheParams = cfg.cache;
    let n = cfg.clusters.count;
    let rows: Vec<(String, String, String)> = vec![
        (
            "Cache size".into(),
            format!("{} KB", cache.l1_size / 1024),
            format!("{} KB ({} KB total)", cache.l1_bank_size / 1024, cache.l1_bank_size * n / 1024),
        ),
        (
            "Set-associativity".into(),
            format!("{}-way", cache.l1_assoc),
            format!("{}-way", cache.l1_assoc),
        ),
        (
            "Line size".into(),
            format!("{} bytes", cache.l1_line),
            format!("{} bytes", cache.l1_bank_line),
        ),
        (
            "Bandwidth".into(),
            format!("{} words/cycle", cache.l1_banks),
            "1 word/cycle per bank".into(),
        ),
        (
            "RAM look-up time".into(),
            format!("{} cycles", cache.l1_latency),
            format!("{} cycles", cache.l1_bank_latency),
        ),
        (
            "LSQ size".into(),
            format!("{}", cache.lsq_per_cluster * n),
            format!("{}", cache.lsq_per_cluster),
        ),
    ];
    for (a, b, c) in rows {
        t2.row(&[a, b, c]);
    }
    println!("{t2}");

    if json {
        let doc = Json::object()
            .set("figure", "tables")
            .set(
                "table1",
                Json::object()
                    .set("fetch_queue", f.fetch_queue)
                    .set("bimodal_size", b.bimodal_size)
                    .set("l1_predictor_entries", b.l1_size)
                    .set("history_bits", b.history_bits)
                    .set("l2_predictor_entries", b.l2_size)
                    .set("btb_sets", b.btb_sets)
                    .set("btb_ways", b.btb_ways)
                    .set("mispredict_penalty", f.mispredict_penalty)
                    .set("fetch_width", f.fetch_width)
                    .set("max_basic_blocks", f.max_basic_blocks)
                    .set("dispatch_width", f.dispatch_width)
                    .set("commit_width", f.commit_width)
                    .set("iq_per_cluster", c.int_iq)
                    .set("regs_per_cluster", c.int_regs)
                    .set("rob_size", f.rob_size)
                    .set("int_alu_per_cluster", c.int_alu)
                    .set("int_muldiv_per_cluster", c.int_muldiv)
                    .set("fp_alu_per_cluster", c.fp_alu)
                    .set("fp_muldiv_per_cluster", c.fp_muldiv)
                    .set("clusters", c.count)
                    .set("l2_size_bytes", cfg.cache.l2_size)
                    .set("l2_assoc", cfg.cache.l2_assoc)
                    .set("l2_latency", cfg.cache.l2_latency)
                    .set("mem_latency", cfg.cache.mem_latency),
            )
            .set(
                "table2",
                Json::object()
                    .set(
                        "centralized",
                        Json::object()
                            .set("l1_size_bytes", cache.l1_size)
                            .set("assoc", cache.l1_assoc)
                            .set("line_bytes", cache.l1_line)
                            .set("banks", cache.l1_banks)
                            .set("latency", cache.l1_latency)
                            .set("lsq_slots", cache.lsq_per_cluster * n),
                    )
                    .set(
                        "decentralized_per_cluster",
                        Json::object()
                            .set("bank_size_bytes", cache.l1_bank_size)
                            .set("assoc", cache.l1_assoc)
                            .set("line_bytes", cache.l1_bank_line)
                            .set("latency", cache.l1_bank_latency)
                            .set("lsq_slots", cache.lsq_per_cluster),
                    ),
            );
        let prov = grid_provenance("tables", &cfg);
        match write_results_envelope("tables", &prov, doc) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write results/tables.json: {e}");
                std::process::exit(1);
            }
        }
    }
}
