//! Figure 5: IPCs for the static base cases (4 and 16 clusters) and
//! the dynamic interval-based schemes — exploration with an adaptive
//! interval, and the no-exploration distant-ILP scheme at three fixed
//! interval lengths (centralized cache, ring interconnect).

use clustered_bench::{measure_instructions, run_experiment, warmup_instructions};
use clustered_core::{IntervalDistantIlp, IntervalExplore, IntervalExploreConfig};
use clustered_sim::{FixedPolicy, ReconfigPolicy, SimConfig};
use clustered_stats::{geometric_mean, percent_change, Table};

/// A named constructor for one policy column of the figure.
type PolicyFactory = Box<dyn Fn() -> Box<dyn ReconfigPolicy>>;

fn main() {
    let warmup = warmup_instructions();
    let measure = measure_instructions();
    // The paper's THRESH3 (1 billion instructions) assumes
    // billions-long runs; scale the give-up bound with the run.
    let max_interval = (measure / 4).max(40_000);
    println!("Figure 5: IPCs for the base cases and interval-based schemes");
    println!("(centralized cache, ring; {measure} measured instructions)\n");

    let policies: Vec<(&str, PolicyFactory)> = vec![
        ("fix4", Box::new(|| Box::new(FixedPolicy::new(4)))),
        ("fix16", Box::new(|| Box::new(FixedPolicy::new(16)))),
        (
            "explore",
            Box::new(move || {
                Box::new(IntervalExplore::new(IntervalExploreConfig {
                    max_interval,
                    ..IntervalExploreConfig::default()
                }))
            }),
        ),
        ("noexp-1K", Box::new(|| Box::new(IntervalDistantIlp::with_interval(1_000)))),
        ("noexp-10K", Box::new(|| Box::new(IntervalDistantIlp::with_interval(10_000)))),
        ("noexp-100K", Box::new(|| Box::new(IntervalDistantIlp::with_interval(100_000)))),
    ];

    let mut table = Table::new(&[
        "benchmark",
        "fix4",
        "fix16",
        "explore",
        "noexp-1K",
        "noexp-10K",
        "noexp-100K",
        "avg-clusters",
    ]);
    let mut ipcs: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    let mut speedups_explore = Vec::new();
    let mut speedups_noexp = Vec::new();
    for w in clustered_workloads::all() {
        let mut cells = vec![w.name().to_string()];
        let mut row = Vec::new();
        let mut explore_active = 0.0;
        for (i, (name, make)) in policies.iter().enumerate() {
            let stats = run_experiment(&w, SimConfig::default(), make(), warmup, measure);
            ipcs[i].push(stats.ipc());
            row.push(stats.ipc());
            cells.push(format!("{:.2}", stats.ipc()));
            if *name == "explore" {
                explore_active = stats.avg_active_clusters();
            }
        }
        cells.push(format!("{explore_active:.1}"));
        let best_static = row[0].max(row[1]);
        speedups_explore.push(row[2] / best_static);
        speedups_noexp.push(row[3] / best_static);
        table.row(&cells);
    }
    let mut means = vec!["geomean".to_string()];
    for series in &ipcs {
        means.push(format!("{:.2}", geometric_mean(series).unwrap_or(0.0)));
    }
    means.push(String::new());
    table.row(&means);
    println!("{table}");

    // The paper's headline compares the dynamic scheme against the best
    // *single* static organisation for the whole suite.
    let g = |i: usize| geometric_mean(&ipcs[i]).unwrap_or(0.0);
    let best_static_org = g(0).max(g(1));
    println!(
        "interval+exploration vs best static organisation: {:+.1}%  (paper: +11%)",
        percent_change(g(2), best_static_org).unwrap_or(0.0)
    );
    let best_noexp = g(3).max(g(4)).max(g(5));
    println!(
        "best no-exploration   vs best static organisation: {:+.1}%  (paper: +11%)",
        percent_change(best_noexp, best_static_org).unwrap_or(0.0)
    );
    println!(
        "per-benchmark: explore tracks best-of(4,16) at {:+.1}%, no-exp @1K at {:+.1}%",
        percent_change(geometric_mean(&speedups_explore).unwrap_or(1.0), 1.0).unwrap_or(0.0),
        percent_change(geometric_mean(&speedups_noexp).unwrap_or(1.0), 1.0).unwrap_or(0.0),
    );
    println!("\nPaper shape: the dynamic schemes match the better of 4/16 clusters per");
    println!("program (and beat both on phase-rich codes like gzip/vpr), gaining on");
    println!("average over any single fixed organisation.");
}
