//! Diagnostic dump of detailed simulator statistics for one workload
//! under a handful of configurations. Intended for model debugging.
//!
//! `diag [WORKLOAD] [--decisions DIR]` — the optional directory
//! receives each configuration's policy decision trace as
//! `DIR/<workload>-<label>.jsonl`.

use clustered_bench::{run_experiment_decisions, write_decisions_jsonl};
use clustered_sim::{FixedPolicy, SimConfig, SteeringKind};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let decisions: Option<PathBuf> = args.iter().position(|a| a == "--decisions").map(|i| {
        PathBuf::from(args.get(i + 1).unwrap_or_else(|| {
            eprintln!("--decisions expects a directory argument");
            std::process::exit(2);
        }))
    });
    // First positional argument that is neither a flag nor the
    // directory following --decisions.
    let name = args
        .iter()
        .scan(false, |skip, a| {
            let keep = !*skip && !a.starts_with("--");
            *skip = a == "--decisions";
            Some((keep, a))
        })
        .find(|(keep, _)| *keep)
        .map_or_else(|| "galgel".to_string(), |(_, a)| a.clone());
    let w = clustered_workloads::by_name(&name).expect("known workload");
    for (label, cfg, n) in [
        ("mono", SimConfig::monolithic(), 1usize),
        ("c4", SimConfig::default(), 4),
        ("c16", SimConfig::default(), 16),
    ] {
        let run = run_experiment_decisions(
            &w,
            cfg,
            Box::new(FixedPolicy::new(n)),
            SteeringKind::default(),
            30_000,
            150_000,
        );
        let s = run.stats;
        println!("== {name} {label}: IPC {:.3}  cycles {}  committed {}", s.ipc(), s.cycles, s.committed);
        println!(
            "   branches {} cond {} mispred {} (interval {:.0})",
            s.branches, s.cond_branches, s.mispredicts, s.mispredict_interval()
        );
        println!(
            "   loads {} stores {} l1hit {:.3} l1miss {} l2miss {} forwards {}",
            s.loads, s.stores, s.l1_hit_rate(), s.l1_misses, s.l2_misses, s.lsq_forwards
        );
        println!(
            "   stalls: fetch {} rob {} resources {}  avg ROB {:.0}",
            s.dispatch_stall_fetch,
            s.dispatch_stall_rob,
            s.dispatch_stall_resources,
            s.rob_occupancy_sum as f64 / s.cycles as f64
        );
        println!(
            "   regxfer {} ({:.2}/instr, {:.2} hops) cachexfer {} distant {:.3}",
            s.reg_transfers,
            s.reg_transfers as f64 / s.committed as f64,
            s.avg_transfer_hops(),
            s.cache_transfers,
            s.distant_issues as f64 / s.committed as f64
        );
        if let Some(dir) = &decisions {
            let prov = clustered_stats::Provenance::new(
                w.name(),
                None,
                cfg.digest(),
                &format!("fixed{n}"),
            );
            match write_decisions_jsonl(dir, &format!("{name}-{label}"), Some(&prov), &run.decisions)
            {
                Ok(path) => {
                    println!("   decisions {} ({} records)", path.display(), run.decisions.len());
                }
                Err(e) => {
                    eprintln!("cannot write decision trace for {name}-{label}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}
