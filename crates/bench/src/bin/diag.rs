//! Diagnostic dump of detailed simulator statistics for one workload
//! under a handful of configurations. Intended for model debugging.

use clustered_bench::run_experiment;
use clustered_sim::{FixedPolicy, SimConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "galgel".to_string());
    let w = clustered_workloads::by_name(&name).expect("known workload");
    for (label, cfg, n) in [
        ("mono", SimConfig::monolithic(), 1usize),
        ("c4", SimConfig::default(), 4),
        ("c16", SimConfig::default(), 16),
    ] {
        let s = run_experiment(&w, cfg, Box::new(FixedPolicy::new(n)), 30_000, 150_000);
        println!("== {name} {label}: IPC {:.3}  cycles {}  committed {}", s.ipc(), s.cycles, s.committed);
        println!(
            "   branches {} cond {} mispred {} (interval {:.0})",
            s.branches, s.cond_branches, s.mispredicts, s.mispredict_interval()
        );
        println!(
            "   loads {} stores {} l1hit {:.3} l1miss {} l2miss {} forwards {}",
            s.loads, s.stores, s.l1_hit_rate(), s.l1_misses, s.l2_misses, s.lsq_forwards
        );
        println!(
            "   stalls: fetch {} rob {} resources {}  avg ROB {:.0}",
            s.dispatch_stall_fetch,
            s.dispatch_stall_rob,
            s.dispatch_stall_resources,
            s.rob_occupancy_sum as f64 / s.cycles as f64
        );
        println!(
            "   regxfer {} ({:.2}/instr, {:.2} hops) cachexfer {} distant {:.3}",
            s.reg_transfers,
            s.reg_transfers as f64 / s.committed as f64,
            s.avg_transfer_hops(),
            s.cache_transfers,
            s.distant_issues as f64 / s.committed as f64
        );
    }
}
