//! Figure 6: IPCs for the base cases, the interval-based algorithm
//! with exploration, and the two fine-grained reconfiguration schemes
//! (every-5th-branch with 10 samples; subroutine call/return with 3
//! samples), on the centralized cache model.

use clustered_bench::{measure_instructions, run_experiment, warmup_instructions};
use clustered_core::{FineGrain, IntervalExplore, IntervalExploreConfig};
use clustered_sim::{FixedPolicy, ReconfigPolicy, SimConfig};
use clustered_stats::{geometric_mean, percent_change, Table};

/// A named constructor for one policy column of the figure.
type PolicyFactory = Box<dyn Fn() -> Box<dyn ReconfigPolicy>>;

fn main() {
    let warmup = warmup_instructions();
    let measure = measure_instructions();
    let max_interval = (measure / 4).max(40_000);
    println!("Figure 6: base cases, interval exploration, fine-grained schemes");
    println!("(centralized cache, ring; {measure} measured instructions)\n");

    let policies: Vec<(&str, PolicyFactory)> = vec![
        ("fix4", Box::new(|| Box::new(FixedPolicy::new(4)))),
        ("fix16", Box::new(|| Box::new(FixedPolicy::new(16)))),
        (
            "explore",
            Box::new(move || {
                Box::new(IntervalExplore::new(IntervalExploreConfig {
                    max_interval,
                    ..IntervalExploreConfig::default()
                }))
            }),
        ),
        ("branch5", Box::new(|| Box::new(FineGrain::branch_policy()))),
        ("call-ret", Box::new(|| Box::new(FineGrain::subroutine_policy()))),
    ];

    let mut table =
        Table::new(&["benchmark", "fix4", "fix16", "explore", "branch5", "call-ret", "reconfigs"]);
    let mut ipcs: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for w in clustered_workloads::all() {
        let mut cells = vec![w.name().to_string()];
        let mut reconfigs = 0;
        for (i, (name, make)) in policies.iter().enumerate() {
            let stats = run_experiment(&w, SimConfig::default(), make(), warmup, measure);
            ipcs[i].push(stats.ipc());
            cells.push(format!("{:.2}", stats.ipc()));
            if *name == "branch5" {
                reconfigs = stats.reconfigurations;
            }
        }
        cells.push(reconfigs.to_string());
        table.row(&cells);
    }
    let mut means = vec!["geomean".to_string()];
    for series in &ipcs {
        means.push(format!("{:.2}", geometric_mean(series).unwrap_or(0.0)));
    }
    means.push(String::new());
    table.row(&means);
    println!("{table}");

    let g = |i: usize| geometric_mean(&ipcs[i]).unwrap_or(0.0);
    let best_static = g(0).max(g(1));
    println!(
        "explore vs best static organisation:  {:+.1}%  (paper: +11%)",
        percent_change(g(2), best_static).unwrap_or(0.0)
    );
    println!(
        "branch5 vs best static organisation:  {:+.1}%  (paper: +15%)",
        percent_change(g(3), best_static).unwrap_or(0.0)
    );
    println!(
        "call-ret vs best static organisation: {:+.1}%",
        percent_change(g(4), best_static).unwrap_or(0.0)
    );
    println!("\nPaper shape: the fine-grained schemes add a few percent over the");
    println!("interval scheme by catching short phases (djpeg, cjpeg, crafty,");
    println!("parser, vpr); gzip is the exception, where early samples mispredict");
    println!("later behaviour.");
}
