//! Table 4: instability factors — for each benchmark, the smallest
//! interval length whose instability factor is below 5%, and the
//! factor at the smallest interval examined.
//!
//! The paper sampled 10K-instruction intervals over billions of
//! instructions; this scaled-down run samples 1K-instruction base
//! intervals over the measured window, so interval lengths are
//! correspondingly smaller. The *ordering* across benchmarks (which
//! programs need coarse intervals) is the reproduced result.

use clustered_bench::{measure_instructions, warmup_instructions};
use clustered_core::phase::{instability_factor, minimum_stable_interval, MetricsRecorder, StabilityThresholds};
use clustered_sim::Processor;
use clustered_stats::Table;

const BASE_INTERVAL: u64 = 1_000;

fn main() {
    let warmup = warmup_instructions();
    let measure = measure_instructions();
    println!("Table 4: instability factors for different interval lengths");
    println!("(16 clusters, centralized cache; base interval {BASE_INTERVAL}, ");
    println!(" {measure} measured instructions)\n");
    let thresholds = StabilityThresholds::default();
    let mut table = Table::new(&[
        "benchmark",
        "min acceptable interval",
        "its instability",
        &format!("instability @ {BASE_INTERVAL}"),
        "paper min (10K base)",
        "paper @10K",
    ]);
    for w in clustered_workloads::all() {
        let (recorder, records) = MetricsRecorder::new(16, BASE_INTERVAL);
        let stream = w.trace().map(|r| r.expect("workload cannot fault"));
        let mut cpu =
            Processor::new(clustered_sim::SimConfig::default(), stream, Box::new(recorder))
                .expect("valid config");
        cpu.run(warmup + measure).expect("no stall");
        let records = records.borrow();
        // Drop the warm-up portion.
        let skip = (warmup / BASE_INTERVAL) as usize;
        let records = &records[skip.min(records.len())..];
        let base_factor =
            instability_factor(records, 1, &thresholds).unwrap_or(f64::NAN);
        let (min_len, min_factor) = minimum_stable_interval(records, &thresholds, 5.0)
            .unwrap_or((0, f64::NAN));
        let paper = w.paper();
        table.row(&[
            w.name().to_string(),
            format!("{min_len}"),
            format!("{min_factor:.0}%"),
            format!("{base_factor:.0}%"),
            format!("{}", paper.min_stable_interval),
            format!("{:.0}%", paper.instability_at_10k),
        ]);
    }
    println!("{table}");
    println!("Paper shape: the loop-based FP codes (swim, mgrid, galgel) are stable at");
    println!("the smallest interval; integer and phased codes (crafty, djpeg, vpr,");
    println!("parser) need intervals one or more doublings coarser.");
}
