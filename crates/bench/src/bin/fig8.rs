//! Figure 8: the grid interconnect — static 4/16 and the interval
//! scheme with exploration, on the centralized cache. Better
//! connectivity shrinks the communication penalty, so the 16-cluster
//! base case improves and the dynamic gain narrows (paper: +7% vs +11%
//! on the ring).

use clustered_bench::{measure_instructions, run_experiment, warmup_instructions};
use clustered_core::{IntervalExplore, IntervalExploreConfig};
use clustered_sim::{FixedPolicy, ReconfigPolicy, SimConfig, Topology};
use clustered_stats::{geometric_mean, percent_change, Table};

/// A named constructor for one policy column of the figure.
type PolicyFactory = Box<dyn Fn() -> Box<dyn ReconfigPolicy>>;

fn main() {
    let warmup = warmup_instructions();
    let measure = measure_instructions();
    let max_interval = (measure / 4).max(40_000);
    let mut cfg = SimConfig::default();
    cfg.interconnect.topology = Topology::Grid;
    println!("Figure 8: interval-based scheme on the grid interconnect");
    println!("(centralized cache; {measure} measured instructions)\n");

    let policies: Vec<(&str, PolicyFactory)> = vec![
        ("fix4", Box::new(|| Box::new(FixedPolicy::new(4)))),
        ("fix16", Box::new(|| Box::new(FixedPolicy::new(16)))),
        (
            "explore",
            Box::new(move || {
                Box::new(IntervalExplore::new(IntervalExploreConfig {
                    max_interval,
                    ..IntervalExploreConfig::default()
                }))
            }),
        ),
    ];

    let mut table = Table::new(&["benchmark", "fix4", "fix16", "explore"]);
    let mut ipcs: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for w in clustered_workloads::all() {
        let mut cells = vec![w.name().to_string()];
        for (i, (_, make)) in policies.iter().enumerate() {
            let stats = run_experiment(&w, cfg, make(), warmup, measure);
            ipcs[i].push(stats.ipc());
            cells.push(format!("{:.2}", stats.ipc()));
        }
        table.row(&cells);
    }
    let mut means = vec!["geomean".to_string()];
    for series in &ipcs {
        means.push(format!("{:.2}", geometric_mean(series).unwrap_or(0.0)));
    }
    table.row(&means);
    println!("{table}");

    let g = |i: usize| geometric_mean(&ipcs[i]).unwrap_or(0.0);
    println!(
        "grid 16-cluster vs 4-cluster: {:+.1}%  (paper: 16 clusters +8% over 4)",
        percent_change(g(1), g(0)).unwrap_or(0.0)
    );
    println!(
        "explore vs best static organisation: {:+.1}%  (paper: +7%)",
        percent_change(g(2), g(0).max(g(1))).unwrap_or(0.0)
    );
}
