//! Ablation study of the design choices DESIGN.md calls out:
//!
//! * steering heuristic (producer/criticality vs Mod_N vs First_Fit,
//!   §2.1's comparison space),
//! * the imbalance threshold of the producer heuristic,
//! * exploration configuration set (2/4/8/16 vs only 4/16),
//! * distant-ILP threshold of the no-exploration scheme.

//!
//! `--json` additionally writes the measurements to
//! `results/ablation.json` (enveloped, see EXPERIMENTS.md), and
//! `--decisions DIR` dumps each run's policy decision trace to
//! `DIR/<section>-<workload>.jsonl`.

use clustered_bench::{
    grid_provenance, measure_instructions, run_experiment_decisions,
    run_experiment_with_steering, warmup_instructions, write_decisions_jsonl,
    write_results_envelope,
};
use clustered_core::{IntervalDistantIlp, IntervalDistantIlpConfig, IntervalExplore, IntervalExploreConfig};
use clustered_sim::{FixedPolicy, SimConfig, SteeringKind};
use clustered_stats::{geometric_mean, Json, Provenance, Table};
use std::path::{Path, PathBuf};

/// One suite pass: runs every workload under the given configuration
/// and returns the geometric-mean IPC. When `dump` carries a decision
/// directory, each run goes through the decision-collecting runner and
/// writes `DIR/<label>-<workload>.jsonl`.
fn suite_geomean(
    cfg: SimConfig,
    steering: SteeringKind,
    make: &dyn Fn() -> Box<dyn clustered_sim::ReconfigPolicy>,
    warmup: u64,
    measure: u64,
    dump: Option<(&Path, &str)>,
) -> f64 {
    let ipcs: Vec<f64> = clustered_workloads::all()
        .iter()
        .map(|w| match dump {
            Some((dir, label)) => {
                let run = run_experiment_decisions(w, cfg, make(), steering, warmup, measure);
                let stem = format!("{label}-{}", w.name());
                let prov = Provenance::new(w.name(), None, cfg.digest(), label);
                if let Err(e) = write_decisions_jsonl(dir, &stem, Some(&prov), &run.decisions) {
                    eprintln!("cannot write decision trace for {stem}: {e}");
                    std::process::exit(1);
                }
                run.stats.ipc()
            }
            None => run_experiment_with_steering(w, cfg, make(), steering, warmup, measure).ipc(),
        })
        .collect();
    geometric_mean(&ipcs).unwrap_or(0.0)
}

fn decisions_dir() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    args.iter().position(|a| a == "--decisions").map(|i| {
        PathBuf::from(args.get(i + 1).unwrap_or_else(|| {
            eprintln!("--decisions expects a directory argument");
            std::process::exit(2);
        }))
    })
}

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let warmup = warmup_instructions();
    let measure = measure_instructions();
    let decisions = decisions_dir();
    let max_interval = (measure / 4).max(40_000);
    let cfg = SimConfig::default();
    let started = std::time::Instant::now();
    // Per-section `[{name, geomean_ipc}]` rows for the `--json` dump.
    let mut sections = Json::object();
    println!("Ablations ({measure} measured instructions per run)\n");

    println!("A. Steering heuristic (fixed 16 clusters):");
    let mut rows: Vec<Json> = Vec::new();
    let mut t = Table::new(&["steering", "suite geomean IPC"]);
    for (name, kind) in [
        ("producer (thresh 4)", SteeringKind::Producer { imbalance_threshold: 4 }),
        ("producer (thresh 1)", SteeringKind::Producer { imbalance_threshold: 1 }),
        ("producer (thresh 12)", SteeringKind::Producer { imbalance_threshold: 12 }),
        ("Mod_4", SteeringKind::ModN(4)),
        ("First_Fit", SteeringKind::FirstFit),
    ] {
        let dump = decisions.as_deref().map(|d| (d, format!("steering-{name}")));
        let g = suite_geomean(
            cfg,
            kind,
            &|| Box::new(FixedPolicy::new(16)),
            warmup,
            measure,
            dump.as_ref().map(|(d, l)| (*d, l.as_str())),
        );
        rows.push(Json::object().set("name", name).set("geomean_ipc", g));
        t.row(&[name.to_string(), format!("{g:.3}")]);
    }
    sections = sections.set("steering", Json::Arr(std::mem::take(&mut rows)));
    println!("{t}");

    println!("B. Criticality predictor (fixed 16 clusters):");
    let mut t = Table::new(&["criticality source", "suite geomean IPC"]);
    for (name, enabled) in [("trained table (paper)", true), ("arrival estimate", false)] {
        let mut c = cfg;
        c.crit.enabled = enabled;
        let dump = decisions.as_deref().map(|d| (d, format!("crit-{name}")));
        let g = suite_geomean(
            c,
            SteeringKind::default(),
            &|| Box::new(FixedPolicy::new(16)),
            warmup,
            measure,
            dump.as_ref().map(|(d, l)| (*d, l.as_str())),
        );
        rows.push(Json::object().set("name", name).set("geomean_ipc", g));
        t.row(&[name.to_string(), format!("{g:.3}")]);
    }
    sections = sections.set("criticality", Json::Arr(std::mem::take(&mut rows)));
    println!("{t}");

    println!("C. Exploration configuration set (interval scheme):");
    let mut t = Table::new(&["configs", "suite geomean IPC"]);
    for (name, configs) in [
        ("2/4/8/16", vec![2usize, 4, 8, 16]),
        ("4/16", vec![4, 16]),
        ("8/16", vec![8, 16]),
    ] {
        let configs2 = configs.clone();
        let dump = decisions.as_deref().map(|d| (d, format!("explore-{name}")));
        let g = suite_geomean(
            cfg,
            SteeringKind::default(),
            &move || {
                Box::new(IntervalExplore::new(IntervalExploreConfig {
                    max_interval,
                    explore_configs: configs2.clone(),
                    ..IntervalExploreConfig::default()
                }))
            },
            warmup,
            measure,
            dump.as_ref().map(|(d, l)| (*d, l.as_str())),
        );
        rows.push(Json::object().set("name", name).set("geomean_ipc", g));
        t.row(&[name.to_string(), format!("{g:.3}")]);
    }
    sections = sections.set("explore_configs", Json::Arr(std::mem::take(&mut rows)));
    println!("{t}");

    println!("D. Distant-ILP threshold (no-exploration scheme, 1K interval):");
    let mut t = Table::new(&["threshold per 1000", "suite geomean IPC"]);
    for threshold in [80u64, 160, 320] {
        let dump = decisions.as_deref().map(|d| (d, format!("distant-{threshold}")));
        let g = suite_geomean(
            cfg,
            SteeringKind::default(),
            &move || {
                Box::new(IntervalDistantIlp::new(IntervalDistantIlpConfig {
                    distant_threshold_per_k: threshold,
                    ..IntervalDistantIlpConfig::default()
                }))
            },
            warmup,
            measure,
            dump.as_ref().map(|(d, l)| (*d, l.as_str())),
        );
        rows.push(Json::object().set("name", threshold.to_string().as_str()).set("geomean_ipc", g));
        t.row(&[threshold.to_string(), format!("{g:.3}")]);
    }
    sections = sections.set("distant_threshold", Json::Arr(std::mem::take(&mut rows)));
    println!("{t}");
    if let Some(dir) = &decisions {
        println!("decision traces in {}\n", dir.display());
    }
    println!("The paper's choices — producer steering with a moderate imbalance");
    println!("threshold, the full 2/4/8/16 exploration set, and the 160/1000");
    println!("distant-ILP threshold — should be at or near the top of each table.");

    if json {
        let doc = Json::object()
            .set("figure", "ablation")
            .set("measure_instructions", measure)
            .set("warmup_instructions", warmup)
            .set("sections", sections);
        let prov =
            grid_provenance("ablation", &cfg).with_wall_seconds(started.elapsed().as_secs_f64());
        match write_results_envelope("ablation", &prov, doc) {
            Ok(path) => println!("\nwrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write results/ablation.json: {e}");
                std::process::exit(1);
            }
        }
    }
}
