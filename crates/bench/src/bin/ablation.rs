//! Ablation study of the design choices DESIGN.md calls out:
//!
//! * steering heuristic (producer/criticality vs Mod_N vs First_Fit,
//!   §2.1's comparison space),
//! * the imbalance threshold of the producer heuristic,
//! * exploration configuration set (2/4/8/16 vs only 4/16),
//! * distant-ILP threshold of the no-exploration scheme.

//!
//! `--decisions DIR` dumps each run's policy decision trace to
//! `DIR/<section>-<workload>.jsonl`.

use clustered_bench::{
    measure_instructions, run_experiment_decisions, run_experiment_with_steering,
    warmup_instructions, write_decisions_jsonl,
};
use clustered_core::{IntervalDistantIlp, IntervalDistantIlpConfig, IntervalExplore, IntervalExploreConfig};
use clustered_sim::{FixedPolicy, SimConfig, SteeringKind};
use clustered_stats::{geometric_mean, Table};
use std::path::{Path, PathBuf};

/// One suite pass: runs every workload under the given configuration
/// and returns the geometric-mean IPC. When `dump` carries a decision
/// directory, each run goes through the decision-collecting runner and
/// writes `DIR/<label>-<workload>.jsonl`.
fn suite_geomean(
    cfg: SimConfig,
    steering: SteeringKind,
    make: &dyn Fn() -> Box<dyn clustered_sim::ReconfigPolicy>,
    warmup: u64,
    measure: u64,
    dump: Option<(&Path, &str)>,
) -> f64 {
    let ipcs: Vec<f64> = clustered_workloads::all()
        .iter()
        .map(|w| match dump {
            Some((dir, label)) => {
                let run = run_experiment_decisions(w, cfg, make(), steering, warmup, measure);
                let stem = format!("{label}-{}", w.name());
                if let Err(e) = write_decisions_jsonl(dir, &stem, &run.decisions) {
                    eprintln!("cannot write decision trace for {stem}: {e}");
                    std::process::exit(1);
                }
                run.stats.ipc()
            }
            None => run_experiment_with_steering(w, cfg, make(), steering, warmup, measure).ipc(),
        })
        .collect();
    geometric_mean(&ipcs).unwrap_or(0.0)
}

fn decisions_dir() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    args.iter().position(|a| a == "--decisions").map(|i| {
        PathBuf::from(args.get(i + 1).unwrap_or_else(|| {
            eprintln!("--decisions expects a directory argument");
            std::process::exit(2);
        }))
    })
}

fn main() {
    let warmup = warmup_instructions();
    let measure = measure_instructions();
    let decisions = decisions_dir();
    let max_interval = (measure / 4).max(40_000);
    let cfg = SimConfig::default();
    println!("Ablations ({measure} measured instructions per run)\n");

    println!("A. Steering heuristic (fixed 16 clusters):");
    let mut t = Table::new(&["steering", "suite geomean IPC"]);
    for (name, kind) in [
        ("producer (thresh 4)", SteeringKind::Producer { imbalance_threshold: 4 }),
        ("producer (thresh 1)", SteeringKind::Producer { imbalance_threshold: 1 }),
        ("producer (thresh 12)", SteeringKind::Producer { imbalance_threshold: 12 }),
        ("Mod_4", SteeringKind::ModN(4)),
        ("First_Fit", SteeringKind::FirstFit),
    ] {
        let dump = decisions.as_deref().map(|d| (d, format!("steering-{name}")));
        let g = suite_geomean(
            cfg,
            kind,
            &|| Box::new(FixedPolicy::new(16)),
            warmup,
            measure,
            dump.as_ref().map(|(d, l)| (*d, l.as_str())),
        );
        t.row(&[name.to_string(), format!("{g:.3}")]);
    }
    println!("{t}");

    println!("B. Criticality predictor (fixed 16 clusters):");
    let mut t = Table::new(&["criticality source", "suite geomean IPC"]);
    for (name, enabled) in [("trained table (paper)", true), ("arrival estimate", false)] {
        let mut c = cfg;
        c.crit.enabled = enabled;
        let dump = decisions.as_deref().map(|d| (d, format!("crit-{name}")));
        let g = suite_geomean(
            c,
            SteeringKind::default(),
            &|| Box::new(FixedPolicy::new(16)),
            warmup,
            measure,
            dump.as_ref().map(|(d, l)| (*d, l.as_str())),
        );
        t.row(&[name.to_string(), format!("{g:.3}")]);
    }
    println!("{t}");

    println!("C. Exploration configuration set (interval scheme):");
    let mut t = Table::new(&["configs", "suite geomean IPC"]);
    for (name, configs) in [
        ("2/4/8/16", vec![2usize, 4, 8, 16]),
        ("4/16", vec![4, 16]),
        ("8/16", vec![8, 16]),
    ] {
        let configs2 = configs.clone();
        let dump = decisions.as_deref().map(|d| (d, format!("explore-{name}")));
        let g = suite_geomean(
            cfg,
            SteeringKind::default(),
            &move || {
                Box::new(IntervalExplore::new(IntervalExploreConfig {
                    max_interval,
                    explore_configs: configs2.clone(),
                    ..IntervalExploreConfig::default()
                }))
            },
            warmup,
            measure,
            dump.as_ref().map(|(d, l)| (*d, l.as_str())),
        );
        t.row(&[name.to_string(), format!("{g:.3}")]);
    }
    println!("{t}");

    println!("D. Distant-ILP threshold (no-exploration scheme, 1K interval):");
    let mut t = Table::new(&["threshold per 1000", "suite geomean IPC"]);
    for threshold in [80u64, 160, 320] {
        let dump = decisions.as_deref().map(|d| (d, format!("distant-{threshold}")));
        let g = suite_geomean(
            cfg,
            SteeringKind::default(),
            &move || {
                Box::new(IntervalDistantIlp::new(IntervalDistantIlpConfig {
                    distant_threshold_per_k: threshold,
                    ..IntervalDistantIlpConfig::default()
                }))
            },
            warmup,
            measure,
            dump.as_ref().map(|(d, l)| (*d, l.as_str())),
        );
        t.row(&[threshold.to_string(), format!("{g:.3}")]);
    }
    println!("{t}");
    if let Some(dir) = &decisions {
        println!("decision traces in {}\n", dir.display());
    }
    println!("The paper's choices — producer steering with a moderate imbalance");
    println!("threshold, the full 2/4/8/16 exploration set, and the 160/1000");
    println!("distant-ILP threshold — should be at or near the top of each table.");
}
