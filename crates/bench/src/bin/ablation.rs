//! Ablation study of the design choices DESIGN.md calls out:
//!
//! * steering heuristic (producer/criticality vs Mod_N vs First_Fit,
//!   §2.1's comparison space),
//! * the imbalance threshold of the producer heuristic,
//! * exploration configuration set (2/4/8/16 vs only 4/16),
//! * distant-ILP threshold of the no-exploration scheme.

use clustered_bench::{measure_instructions, run_experiment_with_steering, warmup_instructions};
use clustered_core::{IntervalDistantIlp, IntervalDistantIlpConfig, IntervalExplore, IntervalExploreConfig};
use clustered_sim::{FixedPolicy, SimConfig, SteeringKind};
use clustered_stats::{geometric_mean, Table};

fn suite_geomean(
    cfg: SimConfig,
    steering: SteeringKind,
    make: &dyn Fn() -> Box<dyn clustered_sim::ReconfigPolicy>,
    warmup: u64,
    measure: u64,
) -> f64 {
    let ipcs: Vec<f64> = clustered_workloads::all()
        .iter()
        .map(|w| run_experiment_with_steering(w, cfg, make(), steering, warmup, measure).ipc())
        .collect();
    geometric_mean(&ipcs).unwrap_or(0.0)
}

fn main() {
    let warmup = warmup_instructions();
    let measure = measure_instructions();
    let max_interval = (measure / 4).max(40_000);
    let cfg = SimConfig::default();
    println!("Ablations ({measure} measured instructions per run)\n");

    println!("A. Steering heuristic (fixed 16 clusters):");
    let mut t = Table::new(&["steering", "suite geomean IPC"]);
    for (name, kind) in [
        ("producer (thresh 4)", SteeringKind::Producer { imbalance_threshold: 4 }),
        ("producer (thresh 1)", SteeringKind::Producer { imbalance_threshold: 1 }),
        ("producer (thresh 12)", SteeringKind::Producer { imbalance_threshold: 12 }),
        ("Mod_4", SteeringKind::ModN(4)),
        ("First_Fit", SteeringKind::FirstFit),
    ] {
        let g = suite_geomean(cfg, kind, &|| Box::new(FixedPolicy::new(16)), warmup, measure);
        t.row(&[name.to_string(), format!("{g:.3}")]);
    }
    println!("{t}");

    println!("B. Criticality predictor (fixed 16 clusters):");
    let mut t = Table::new(&["criticality source", "suite geomean IPC"]);
    for (name, enabled) in [("trained table (paper)", true), ("arrival estimate", false)] {
        let mut c = cfg;
        c.crit.enabled = enabled;
        let g = suite_geomean(c, SteeringKind::default(), &|| Box::new(FixedPolicy::new(16)), warmup, measure);
        t.row(&[name.to_string(), format!("{g:.3}")]);
    }
    println!("{t}");

    println!("C. Exploration configuration set (interval scheme):");
    let mut t = Table::new(&["configs", "suite geomean IPC"]);
    for (name, configs) in [
        ("2/4/8/16", vec![2usize, 4, 8, 16]),
        ("4/16", vec![4, 16]),
        ("8/16", vec![8, 16]),
    ] {
        let configs2 = configs.clone();
        let g = suite_geomean(
            cfg,
            SteeringKind::default(),
            &move || {
                Box::new(IntervalExplore::new(IntervalExploreConfig {
                    max_interval,
                    explore_configs: configs2.clone(),
                    ..IntervalExploreConfig::default()
                }))
            },
            warmup,
            measure,
        );
        t.row(&[name.to_string(), format!("{g:.3}")]);
    }
    println!("{t}");

    println!("D. Distant-ILP threshold (no-exploration scheme, 1K interval):");
    let mut t = Table::new(&["threshold per 1000", "suite geomean IPC"]);
    for threshold in [80u64, 160, 320] {
        let g = suite_geomean(
            cfg,
            SteeringKind::default(),
            &move || {
                Box::new(IntervalDistantIlp::new(IntervalDistantIlpConfig {
                    distant_threshold_per_k: threshold,
                    ..IntervalDistantIlpConfig::default()
                }))
            },
            warmup,
            measure,
        );
        t.row(&[threshold.to_string(), format!("{g:.3}")]);
    }
    println!("{t}");
    println!("The paper's choices — producer steering with a moderate imbalance");
    println!("threshold, the full 2/4/8/16 exploration set, and the 160/1000");
    println!("distant-ILP threshold — should be at or near the top of each table.");
}
