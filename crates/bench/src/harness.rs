//! A small `std::time::Instant` bench harness (the offline build
//! environment cannot fetch criterion).
//!
//! Each case runs a fixed number of timed samples after one warm-up
//! iteration and reports min / median / mean wall time. Set
//! `CLUSTERED_BENCH_SAMPLES` to trade time for stability, and
//! `CLUSTERED_BENCH_JSON=path.json` to also write the results as a
//! machine-readable document for trend tracking across PRs.

use clustered_stats::Json;
use std::time::{Duration, Instant};

/// Collects timing results for a suite of named closures.
#[derive(Debug)]
pub struct Harness {
    name: String,
    samples: usize,
    results: Vec<CaseResult>,
}

/// Timing summary of one bench case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseResult {
    /// Case label, `group/name` by convention.
    pub name: String,
    /// Timed samples, ascending.
    pub sorted: Vec<Duration>,
}

impl CaseResult {
    /// Fastest sample, or zero for an empty (never-run) case.
    pub fn min(&self) -> Duration {
        self.sorted.first().copied().unwrap_or(Duration::ZERO)
    }

    /// Median sample, or zero for an empty case.
    pub fn median(&self) -> Duration {
        self.sorted.get(self.sorted.len() / 2).copied().unwrap_or(Duration::ZERO)
    }

    /// Mean of all samples, or zero for an empty case.
    pub fn mean(&self) -> Duration {
        match self.sorted.len() {
            0 => Duration::ZERO,
            n => self.sorted.iter().sum::<Duration>() / n as u32,
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} µs", s * 1e6)
    }
}

impl Harness {
    /// A harness named `name`, reading the sample count from the
    /// `CLUSTERED_BENCH_SAMPLES` environment variable.
    pub fn from_env(name: &str) -> Harness {
        Harness::from_env_str(name, std::env::var("CLUSTERED_BENCH_SAMPLES").ok().as_deref())
    }

    /// The injectable seam behind [`Harness::from_env`]: `samples` is
    /// the raw `CLUSTERED_BENCH_SAMPLES` value, if set. Tests pass
    /// values here directly — `std::env::set_var` is process-global, so
    /// mutating the real environment races sibling test threads that
    /// read it. The parsed count is clamped to at least 1: a `0` must
    /// not produce empty cases whose summaries would otherwise be
    /// undefined.
    pub fn from_env_str(name: &str, samples: Option<&str>) -> Harness {
        let samples = samples.and_then(|v| v.parse().ok()).map(|n: usize| n.max(1)).unwrap_or(10);
        println!("bench suite `{name}`: {samples} samples per case\n");
        println!("{:<44} {:>12} {:>12} {:>12}", "case", "min", "median", "mean");
        Harness { name: name.to_string(), samples, results: Vec::new() }
    }

    /// Times `f` and prints its row immediately.
    pub fn bench(&mut self, name: &str, mut f: impl FnMut()) {
        f(); // warm-up: first-touch costs are not what we track
        let mut sorted = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            f();
            sorted.push(t.elapsed());
        }
        sorted.sort();
        let r = CaseResult { name: name.to_string(), sorted };
        println!(
            "{:<44} {:>12} {:>12} {:>12}",
            r.name,
            fmt_duration(r.min()),
            fmt_duration(r.median()),
            fmt_duration(r.mean())
        );
        self.results.push(r);
    }

    /// Completed results so far.
    pub fn results(&self) -> &[CaseResult] {
        &self.results
    }

    /// The whole suite as a JSON document. Alongside the `cases`
    /// array the document carries a `provenance` block (no trace or
    /// config — the suite times host code, so only the code version
    /// and host fingerprint identify a run); `bench-cmp` surfaces it
    /// when comparing two documents.
    pub fn to_json(&self) -> Json {
        let cases: Vec<Json> = self
            .results
            .iter()
            .map(|r| {
                Json::object()
                    .set("name", r.name.as_str())
                    .set("min_ns", r.min().as_nanos() as u64)
                    .set("median_ns", r.median().as_nanos() as u64)
                    .set("mean_ns", r.mean().as_nanos() as u64)
                    .set("samples", r.sorted.len())
            })
            .collect();
        let prov = clustered_stats::Provenance::new(self.name.as_str(), None, 0, "bench-harness");
        Json::object()
            .set("suite", self.name.as_str())
            .set("provenance", prov.to_json())
            .set("cases", Json::Arr(cases))
    }

    /// Writes the JSON document if `CLUSTERED_BENCH_JSON` is set
    /// (creating parent directories; benches run with the crate as
    /// cwd, so fresh relative paths are common); call last.
    pub fn finish(&self) {
        if let Ok(path) = std::env::var("CLUSTERED_BENCH_JSON") {
            if let Some(dir) = std::path::Path::new(&path).parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            match std::fs::write(&path, self.to_json().to_string_pretty()) {
                Ok(()) => println!("\nwrote {path}"),
                Err(e) => eprintln!("\ncannot write {path}: {e}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut h = Harness { name: "t".into(), samples: 3, results: Vec::new() };
        let mut n = 0u64;
        h.bench("case", || n = n.wrapping_add(1));
        assert_eq!(n, 4, "warm-up plus three samples");
        let r = &h.results()[0];
        assert_eq!(r.sorted.len(), 3);
        assert!(r.min() <= r.median() && r.median() <= *r.sorted.last().unwrap());
        let j = h.to_json();
        assert_eq!(j.get("suite").and_then(Json::as_str), Some("t"));
        assert_eq!(j.get("cases").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        let prov = j.get("provenance").expect("harness documents carry provenance");
        assert!(clustered_stats::Provenance::from_json(prov).is_some());
    }

    /// Summaries are total: an empty case reports zeros instead of
    /// panicking on an index or a division by zero.
    #[test]
    fn empty_case_summaries_are_zero() {
        let r = CaseResult { name: "empty".into(), sorted: Vec::new() };
        assert_eq!(r.min(), Duration::ZERO);
        assert_eq!(r.median(), Duration::ZERO);
        assert_eq!(r.mean(), Duration::ZERO);
    }

    /// `CLUSTERED_BENCH_SAMPLES=0` is clamped to one sample, never an
    /// empty run. Exercised through the injectable seam — the test must
    /// not mutate the process-global environment, which other tests'
    /// threads may be reading concurrently.
    #[test]
    fn zero_samples_env_is_clamped() {
        assert_eq!(Harness::from_env_str("clamp", Some("0")).samples, 1);
        assert_eq!(Harness::from_env_str("parse", Some("7")).samples, 7);
        assert_eq!(Harness::from_env_str("garbage", Some("not-a-number")).samples, 10);
        assert_eq!(Harness::from_env_str("unset", None).samples, 10);
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000 ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.000 µs");
    }
}
