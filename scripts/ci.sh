#!/usr/bin/env sh
# The whole CI gate, runnable locally and offline: build, tests, and
# lints for every workspace crate. No network access is required — the
# workspace has no external dependencies by design (see Cargo.toml).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> schedule oracles under debug assertions"
# The backend's hot-loop rebuild leans on invariants that only
# debug_assert! checks (event floor monotonicity, slot-window span,
# ROB indexing): run the bit-identity oracles explicitly in a
# debug-assertions build so a latent violation panics here rather
# than silently shipping. Explicit even though the workspace test run
# above also covers them — this gate must survive that step ever
# moving to --release.
#
# parallel_equivalence re-runs the 360-point matrix at 1/2/4 intra-run
# threads: the pool's raw-pointer domain partition and the batched
# event-drain invariants are exactly the kind of code whose bugs only
# debug_assert! catches.
cargo test --quiet --test shard_equivalence --test compiled_replay --test parallel_equivalence

echo "==> flat-scheduler property suite (slow-tests feature)"
# Model-based equivalence of Cluster::select against the reference
# heap/BTreeSet scheduler on randomized schedules; feature-gated so
# it cannot rot unexercised.
cargo test --quiet -p clustered-sim --features slow-tests --test cluster_select_props

echo "==> bench smoke (2 samples per case)"
# Not a performance gate — just proof that every bench target still
# runs end to end. Two samples keep it to seconds.
CLUSTERED_BENCH_SAMPLES=2 cargo bench --workspace --quiet

echo "==> trace cache: cold vs warm fig3 grid"
# The capture cache must be invisible to results: run one grid cold
# (captures live, writes .ctrace files), then warm (loads them, zero
# emulation), and require bit-identical output. Small window: this is
# a correctness gate, not a measurement.
CACHE_TMP=$(mktemp -d)
trap 'rm -rf "$CACHE_TMP"' EXIT
CLUSTERED_TRACE_CACHE="$CACHE_TMP/traces" CLUSTERED_MEASURE=20000 CLUSTERED_WARMUP=2000 \
    ./target/release/fig3 > "$CACHE_TMP/cold.txt"
ls "$CACHE_TMP/traces/"*.ctrace > /dev/null  # the cold run must populate the cache
CLUSTERED_TRACE_CACHE="$CACHE_TMP/traces" CLUSTERED_MEASURE=20000 CLUSTERED_WARMUP=2000 \
    ./target/release/fig3 > "$CACHE_TMP/warm.txt"
cmp "$CACHE_TMP/cold.txt" "$CACHE_TMP/warm.txt"

echo "==> explain smoke (decision telemetry end to end)"
# One short run per policy family plus a JSONL dump: `explain` must
# render a timeline and the dump must be non-empty.
for policy in explore distant branch; do
    ./target/release/clustered explain --workload gzip --policy "$policy" \
        --warmup 2000 --instructions 25000 --limit 5 \
        --decisions "$CACHE_TMP/$policy.jsonl" > "$CACHE_TMP/$policy.txt"
    grep -q "decision timeline" "$CACHE_TMP/$policy.txt"
    test -s "$CACHE_TMP/$policy.jsonl"
done

echo "==> perf smoke (host profiler end to end)"
# A short profiled run: the host_profile JSON must parse-ably report
# throughput and the Chrome trace must be written and non-empty.
./target/release/clustered perf --workload gzip --policy explore \
    --warmup 2000 --instructions 25000 --sample-interval 5000 \
    --out "$CACHE_TMP/host_trace.json" > "$CACHE_TMP/perf.txt"
grep -q "sim cycles/sec" "$CACHE_TMP/perf.txt"
test -s "$CACHE_TMP/host_trace.json"
./target/release/clustered perf --workload gzip --warmup 2000 \
    --instructions 25000 --json > "$CACHE_TMP/perf.json"
grep -q '"sim_cycles_per_sec"' "$CACHE_TMP/perf.json"

echo "==> conservation-law audit (strict, grid subset)"
# The full 360-point grid runs under `cargo test --test audit_grid`
# above; this re-checks a subset through the CLI's `--audit strict`
# path so the non-zero-exit contract stays wired end to end. The
# subset spans both cache models and an adaptive + a fixed policy.
for workload in gzip swim parser; do
    ./target/release/clustered run --workload "$workload" --policy explore \
        --warmup 2000 --instructions 20000 --audit strict > /dev/null
    ./target/release/clustered run --workload "$workload" --policy fixed \
        --clusters 8 --decentralized \
        --warmup 2000 --instructions 20000 --audit strict > /dev/null
done

echo "==> diff smoke (same config identical, cross-policy drifted)"
# Two runs of the same trace + config must diff as `identical`
# (determinism through the artifact layer), and a different policy
# must produce structured per-counter deltas with verdict `drifted`.
./target/release/clustered run --workload gzip --policy explore \
    --warmup 2000 --instructions 20000 --json \
    --ledger "$CACHE_TMP/ledger.jsonl" > "$CACHE_TMP/run_a.json"
./target/release/clustered run --workload gzip --policy explore \
    --warmup 2000 --instructions 20000 --json \
    --ledger "$CACHE_TMP/ledger.jsonl" > "$CACHE_TMP/run_b.json"
./target/release/clustered run --workload gzip --policy fixed --clusters 8 \
    --warmup 2000 --instructions 20000 --json \
    --ledger "$CACHE_TMP/ledger.jsonl" > "$CACHE_TMP/run_c.json"
./target/release/clustered diff "$CACHE_TMP/run_a.json" "$CACHE_TMP/run_b.json" \
    > "$CACHE_TMP/diff_ab.txt"
grep -q "verdict: identical" "$CACHE_TMP/diff_ab.txt"
./target/release/clustered diff "$CACHE_TMP/run_a.json" "$CACHE_TMP/run_c.json" \
    --json > "$CACHE_TMP/diff_ac.json"
grep -q '"verdict": "drifted"' "$CACHE_TMP/diff_ac.json"
grep -q '"changed"' "$CACHE_TMP/diff_ac.json"

echo "==> run ledger + report smoke"
# The three --ledger runs above registered their provenance; the
# report must aggregate them into both policy groups.
./target/release/clustered report --ledger "$CACHE_TMP/ledger.jsonl" \
    > "$CACHE_TMP/report.txt"
grep -q "interval-explore" "$CACHE_TMP/report.txt"
grep -q "fixed-8" "$CACHE_TMP/report.txt"

echo "==> bench-cmp gate (perf-regression tool self-check)"
# Every committed BENCH trajectory compared against itself must pass,
# and an injected 9x regression must fail with exit code 1 — proving
# the gate can actually catch an eroded win before we rely on it.
for bench in results/BENCH_*.json; do
    # BENCH_shard.json is a hand-captured pre/post record, not a
    # harness trajectory; bench-cmp only reads documents with `cases`.
    if grep -q '"cases"' "$bench"; then
        ./target/release/bench-cmp "$bench" "$bench"
    else
        echo "    (skipping $bench: no harness cases array)"
    fi
done
sed 's/"min_ns": /"min_ns": 9/' results/BENCH_sweeps.json > "$CACHE_TMP/perturbed.json"
status=0
./target/release/bench-cmp results/BENCH_sweeps.json "$CACHE_TMP/perturbed.json" \
    > /dev/null || status=$?
if [ "$status" -ne 1 ]; then
    echo "bench-cmp must exit 1 on an injected regression, got $status" >&2
    exit 1
fi

echo "==> trace info smoke (compiled-table report)"
# `trace info` must compile the table on demand and report its size and
# block count; the fig3 cold run above populated the cache with
# .ctrace files we can inspect.
first_trace=$(ls "$CACHE_TMP/traces/"*.ctrace | head -n 1)
./target/release/clustered trace info "$first_trace" > "$CACHE_TMP/traceinfo.txt"
grep -q "compiled table" "$CACHE_TMP/traceinfo.txt"
grep -q "basic blocks" "$CACHE_TMP/traceinfo.txt"

echo "==> cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo clippy --workspace -- -D warnings"
# Clippy is optional on machines without the component (it ships with
# rustup's default profile; minimal installs may lack it).
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "clippy not installed; skipping lint step" >&2
fi

echo "CI gate passed."
