//! `clustered` — command-line front end to the simulator.
//!
//! ```text
//! clustered run --workload gzip --policy explore --instructions 500000
//! clustered run --workload gzip --policy explore --json
//! clustered run --program kernel.s --clusters 8 --decentralized
//! clustered run --from-trace gzip.ctrace --policy explore
//! clustered trace --workload gzip --policy explore --out trace.json
//! clustered trace save --workload gzip --out gzip.ctrace
//! clustered trace info gzip.ctrace
//! clustered perf --workload gzip    # host-side profile of the simulator
//! clustered asm kernel.s            # assemble + disassemble/report
//! clustered workloads               # list the built-in suite
//! clustered phases --workload gzip  # Table-4 style instability report
//! ```

use clustered::policies::phase::{
    instability_factor, MetricsRecorder, StabilityThresholds,
};
use clustered::policies::{
    chrome_trace, decisions_jsonl, host_chrome_trace, host_profile_json, timeline_jsonl, FineGrain,
    IntervalDistantIlp, IntervalExplore, Recording,
};
use clustered::sim::{
    estimate_energy, AuditObserver, CacheModel, DecisionReason, DecisionRecord, DecisionTrace,
    EnergyParams, FixedPolicy, HostProfiler, HostStage, MetricsObserver, PolicyState, Processor,
    ReconfigPolicy, SimConfig, SimStats, SteeringKind, Topology, DEFAULT_EVENT_CAP,
    DEFAULT_SAMPLE_INTERVAL,
};
use clustered::stats::{
    append_entry, diff_docs, envelope, read_ledger, Json, LedgerEntry, LedgerReport, Provenance,
    DEFAULT_DIFF_THRESHOLD, DEFAULT_LEDGER_PATH,
};
use clustered::{emu, isa, workloads};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("trace") => match args.get(1).map(String::as_str) {
            Some("save") => cmd_trace_save(&args[2..]),
            Some("info") => cmd_trace_info(&args[2..]),
            _ => cmd_trace(&args[1..]),
        },
        Some("explain") => cmd_explain(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("perf") => cmd_perf(&args[1..]),
        Some("asm") => cmd_asm(&args[1..]),
        Some("workloads") => cmd_workloads(),
        Some("phases") => cmd_phases(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

/// Adapter letting `Recording` wrap an already-boxed policy.
struct BoxedPolicy(Box<dyn ReconfigPolicy>);

impl ReconfigPolicy for BoxedPolicy {
    fn name(&self) -> String {
        self.0.name()
    }
    fn initial_clusters(&self) -> usize {
        self.0.initial_clusters()
    }
    fn on_commit(&mut self, event: &clustered::sim::CommitEvent) -> Option<usize> {
        self.0.on_commit(event)
    }
    fn take_decision(&mut self) -> Option<DecisionRecord> {
        self.0.take_decision()
    }
}

const USAGE: &str = "\
clustered — dynamically tunable clustered-processor simulator

USAGE:
  clustered run [--workload NAME | --program FILE.s | --from-trace FILE.ctrace]
                [--policy fixed|explore|distant|branch|subroutine]
                [--clusters N] [--instructions N] [--warmup N]
                [--decentralized] [--grid] [--monolithic] [--energy]
                [--intra-jobs N]  drain shards / issue across N threads within
                                  the run (0 = sequential oracle; bit-identical)
                [--csv FILE]      write a per-interval timeline CSV
                [--json]          print statistics as a JSON document
                                  ({schema_version, provenance, data})
                [--audit [strict]] check conservation laws every audit
                                  interval; `strict` exits non-zero on
                                  any violation
                [--ledger [FILE]] append this run's provenance and
                                  headline metrics to the run ledger
                                  (default results/ledger.jsonl)
  clustered trace [--workload NAME | --program FILE.s]
                [--policy ...] [--clusters N] [--instructions N]
                [--warmup N] [--interval N] [--decentralized] [--grid]
                [--monolithic] [--out FILE.json] [--events FILE.jsonl]
                                write a Chrome trace-event file (load in
                                chrome://tracing or ui.perfetto.dev) and,
                                with --events, a per-interval JSONL timeline
  clustered trace save [--workload NAME | --program FILE.s]
                [--instructions N] [--warmup N] [--out FILE.ctrace]
                                capture once and write a .ctrace file that
                                `run --from-trace` replays without re-emulating
  clustered trace info FILE.ctrace
                                validate a .ctrace file and print its header
  clustered explain [--workload NAME | --program FILE.s]
                [--policy fixed|explore|distant|branch|subroutine]
                [--clusters N] [--instructions N] [--warmup N]
                [--decentralized] [--grid] [--monolithic]
                [--limit N]       timeline rows to print (default 40)
                [--decision-cap N] decision records kept before dropping
                [--decisions FILE.jsonl]
                                render the policy's decision timeline and
                                summary statistics (time per state, reconfig
                                rate, interval-length histogram) and, with
                                --decisions, dump the raw JSONL trace
  clustered perf [--workload NAME | --program FILE.s]
                [--policy ...] [--clusters N] [--instructions N] [--warmup N]
                [--decentralized] [--grid] [--monolithic]
                [--intra-jobs N]  intra-run worker threads (0 = sequential)
                [--sample-interval N]
                                host-profile slice length in cycles (default 10000)
                [--out FILE.json] write a host-side Chrome trace (stage spans
                                and queue-depth counter tracks)
                [--json]          print the host_profile JSON document
                                profile the simulator itself: where host
                                wall-clock goes per pipeline stage, calendar
                                queue health, and per-cluster load skew
  clustered diff A.json B.json  compare two result artifacts, aligned by
                [--threshold X]   their provenance blocks; relative deltas
                [--json]          up to X count as noise (default 0) and
                                  the verdict is one of identical /
                                  within-noise / drifted
  clustered report [--ledger FILE] [--json]
                                aggregate the run ledger into a
                                per-workload × policy comparison table
  clustered asm FILE.s          assemble a program and report on it
  clustered workloads           list built-in workloads
  clustered phases --workload NAME [--instructions N]
                                interval-stability report (Table 4)
  clustered help                this message

Defaults: --workload gzip --policy explore --clusters 4 (fixed policy)
          --instructions 500000 --warmup 50000

Set CLUSTERED_TRACE_CACHE=dir to cache captures as .ctrace files there;
warm runs of `clustered run` and the bench grids skip emulation entirely.
";

struct Flags {
    values: Vec<(String, Option<String>)>,
}

impl Flags {
    fn parse(args: &[String], known: &[&str]) -> Result<Flags, String> {
        let mut values = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument `{arg}`"));
            };
            if !known.contains(&name) {
                return Err(format!("unknown flag `--{name}`\n{USAGE}"));
            }
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => Some(it.next().expect("peeked").clone()),
                _ => None,
            };
            values.push((name.to_string(), value));
        }
        Ok(Flags { values })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.values.iter().any(|(n, _)| n == name)
    }

    fn get_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name} expects a number, got `{v}`")),
        }
    }
}

fn load_workload(flags: &Flags) -> Result<workloads::Workload, String> {
    if let Some(path) = flags.get("program") {
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let paper = workloads::PaperProfile {
            class: workloads::WorkloadClass::SpecInt,
            base_ipc: 0.0,
            mispredict_interval: 0,
            min_stable_interval: 0,
            instability_at_10k: 0.0,
            distant_ilp: false,
        };
        // Validate explicitly so the user gets the line number rather
        // than a panic.
        isa::assemble(&source).map_err(|e| format!("{path}: {e}"))?;
        Ok(workloads::Workload::from_source(path, "user program", paper, &source, Vec::new()))
    } else {
        let name = flags.get("workload").unwrap_or("gzip");
        workloads::by_name(name).ok_or_else(|| {
            format!("unknown workload `{name}`; try `clustered workloads`")
        })
    }
}

fn build_config(flags: &Flags) -> Result<SimConfig, String> {
    let mut cfg =
        if flags.has("monolithic") { SimConfig::monolithic() } else { SimConfig::default() };
    if flags.has("decentralized") {
        cfg.cache.model = CacheModel::Decentralized;
    }
    if flags.has("grid") {
        cfg.interconnect.topology = Topology::Grid;
    }
    // Host-execution knob: the schedule is bit-identical at any value
    // (0 = the sequential oracle loop).
    cfg.intra_jobs = flags.get_u64("intra-jobs", 0)? as usize;
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(cfg)
}

fn build_policy(flags: &Flags, cfg: &SimConfig) -> Result<Box<dyn ReconfigPolicy>, String> {
    let default_clusters = 4.min(cfg.clusters.count as u64);
    let clusters = flags.get_u64("clusters", default_clusters)? as usize;
    if clusters == 0 || clusters > cfg.clusters.count {
        return Err(format!(
            "--clusters must be in 1..={}, got {clusters}",
            cfg.clusters.count
        ));
    }
    let policy = flags.get("policy").unwrap_or(if flags.has("clusters") {
        "fixed"
    } else {
        "explore"
    });
    if policy != "fixed" && flags.has("clusters") {
        return Err(format!(
            "--clusters only applies to --policy fixed; `{policy}` chooses its own"
        ));
    }
    Ok(match policy {
        "fixed" => Box::new(FixedPolicy::new(clusters)),
        "explore" => Box::new(IntervalExplore::default()),
        "distant" => Box::new(IntervalDistantIlp::default()),
        "branch" => Box::new(FineGrain::branch_policy()),
        "subroutine" => Box::new(FineGrain::subroutine_policy()),
        other => return Err(format!("unknown policy `{other}`")),
    })
}

const RUN_FLAGS: &[&str] = &[
    "workload",
    "program",
    "from-trace",
    "policy",
    "clusters",
    "instructions",
    "warmup",
    "decentralized",
    "grid",
    "monolithic",
    "intra-jobs",
    "energy",
    "csv",
    "json",
    "audit",
    "ledger",
];

fn cmd_run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, RUN_FLAGS)?;
    let cfg = build_config(&flags)?;
    let policy = build_policy(&flags, &cfg)?;
    let policy_name = policy.name();
    let instructions = flags.get_u64("instructions", 500_000)?;
    let warmup = flags.get_u64("warmup", 50_000)?;
    // --audit alone reports violations; --audit strict also fails the
    // run. Parsed up front so a typo surfaces before the simulation.
    let audit = match (flags.has("audit"), flags.get("audit")) {
        (false, _) => None,
        (true, None) => Some(false),
        (true, Some("strict")) => Some(true),
        (true, Some(other)) => {
            return Err(format!("--audit accepts only `strict`, got `{other}`"))
        }
    };

    // Capture once, replay: same records as live emulation (pinned by
    // the capture tests), and the buffer is reusable had we multiple
    // points — the same path the bench sweep executor uses. The stream
    // comes from a .ctrace file (--from-trace), the capture cache
    // ($CLUSTERED_TRACE_CACHE), or a fresh capture, in that order; all
    // three replay bit-identically.
    let trace = match flags.get("from-trace") {
        Some(path) => {
            if flags.has("workload") || flags.has("program") {
                return Err("--from-trace already names the workload; \
                            drop --workload/--program"
                    .into());
            }
            let t = workloads::CapturedTrace::load(path).map_err(|e| format!("{path}: {e}"))?;
            if (t.len() as u64) < warmup + instructions && !t.ended_at_halt() {
                return Err(format!(
                    "`{path}` holds {} records but this run consumes up to {} \
                     (--warmup + --instructions); re-save it with a larger window",
                    t.len(),
                    warmup + instructions
                ));
            }
            t
        }
        None => {
            let workload = load_workload(&flags)?;
            workloads::capture_for_window_cached(
                &workload,
                warmup,
                instructions,
                workloads::env_cache_dir().as_deref(),
            )
        }
    };
    let workload_name = trace.name().to_string();

    let (policy, timeline): (Box<dyn ReconfigPolicy>, _) = match flags.get("csv") {
        Some(_) => {
            let (wrapped, out) = Recording::new(BoxedPolicy(policy), 1_000);
            (Box::new(wrapped), Some(out))
        }
        None => (policy, None),
    };
    // Pre-decode once, then simulate off the compiled table: identical
    // results to plain replay, cheaper per instruction. The audited
    // run duplicates the drive sequence with an `AuditObserver` plugged
    // in — the processor's observer is a type parameter, so the two
    // branches build distinct monomorphisations (the unaudited one
    // keeps the zero-cost `NullObserver` path).
    let stream = trace.compile().replay();
    let wall = std::time::Instant::now();
    let short_run = |committed: u64| {
        format!(
            "program ended after {committed} instructions, inside the \
             {warmup}-instruction warm-up; rerun with a smaller --warmup"
        )
    };
    let (s, audit_doc): (SimStats, Option<Json>) = match audit {
        None => {
            let mut cpu = Processor::new(cfg, stream, policy).map_err(|e| e.to_string())?;
            cpu.run(warmup).map_err(|e| e.to_string())?;
            if cpu.finished() {
                return Err(short_run(cpu.stats().committed));
            }
            let before = *cpu.stats();
            cpu.run(instructions).map_err(|e| e.to_string())?;
            (cpu.stats().delta_since(&before), None)
        }
        Some(strict) => {
            let mut cpu = Processor::with_observer(
                cfg,
                stream,
                policy,
                SteeringKind::default(),
                AuditObserver::new(),
            )
            .map_err(|e| e.to_string())?;
            cpu.run(warmup).map_err(|e| e.to_string())?;
            if cpu.finished() {
                return Err(short_run(cpu.stats().committed));
            }
            let before = *cpu.stats();
            cpu.run(instructions).map_err(|e| e.to_string())?;
            let s = cpu.stats().delta_since(&before);
            let auditor = cpu.observer();
            if !auditor.is_clean() {
                for v in auditor.violations() {
                    eprintln!("audit violation: {v}");
                }
                if strict {
                    return Err(format!(
                        "audit: {} violation(s) across {} checks",
                        auditor.violations().len(),
                        auditor.checks_run()
                    ));
                }
            }
            (s, Some(auditor.to_json()))
        }
    };
    let prov = Provenance::new(
        workload_name.as_str(),
        Some(trace.checksum()),
        cfg.digest(),
        policy_name.as_str(),
    )
    .with_wall_seconds(wall.elapsed().as_secs_f64());

    if flags.has("json") {
        // Run metadata first, then every counter and derived rate from
        // the exhaustive SimStats export; the whole document rides in
        // the {schema_version, provenance, data} envelope shared by
        // every exported artifact.
        let mut doc = Json::object()
            .set("workload", workload_name.as_str())
            .set("policy", policy_name.as_str())
            .set("warmup", warmup);
        if let Json::Obj(fields) = s.to_json() {
            for (key, value) in fields {
                doc = doc.set(&key, value);
            }
        }
        if flags.has("energy") {
            let e = estimate_energy(&s, &EnergyParams::default());
            doc = doc.set(
                "energy",
                Json::object()
                    .set("total", e.total())
                    .set("active_leakage", e.active_leakage)
                    .set("idle_leakage", e.idle_leakage)
                    .set("dynamic", e.dynamic)
                    .set("per_instruction", e.per_instruction(&s)),
            );
        }
        if let Some(a) = &audit_doc {
            doc = doc.set("audit", a.clone());
        }
        println!("{}", envelope(&prov, doc).to_string_pretty());
    } else {
        println!("workload            {workload_name}");
        println!("policy              {policy_name}");
        println!("instructions        {}", s.committed);
        println!("cycles              {}", s.cycles);
        println!("IPC                 {:.3}", s.ipc());
        println!("mean active clusters {:.1}", s.avg_active_clusters());
        println!("reconfigurations    {}", s.reconfigurations);
        println!("branch mispredicts  {} (1 per {:.0} instructions)", s.mispredicts, s.mispredict_interval());
        println!("L1 hit rate         {:.1}%", 100.0 * s.l1_hit_rate());
        println!(
            "register transfers  {} ({:.2} hops avg)",
            s.reg_transfers,
            s.avg_transfer_hops()
        );
        println!(
            "distant-ILP issues  {:.1}%",
            100.0 * s.distant_issues as f64 / s.committed.max(1) as f64
        );
        if let Some(a) = &audit_doc {
            let checks = a.get("checks_run").and_then(Json::as_u64).unwrap_or(0);
            let violations = a
                .get("violations")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len);
            println!(
                "audit               {} ({checks} checks, {violations} violations)",
                if violations == 0 { "clean" } else { "VIOLATED" }
            );
        }
    }
    if let (Some(path), Some(timeline)) = (flags.get("csv"), timeline.as_ref()) {
        let mut csv = String::from("committed,cycles,ipc,branches,memrefs,clusters\n");
        // Match the printed statistics: intervals entirely inside the
        // warm-up are discarded.
        for entry in timeline.borrow().iter().filter(|e| e.committed > warmup) {
            csv.push_str(&format!(
                "{},{},{:.4},{},{},{}\n",
                entry.committed,
                entry.record.cycles,
                entry.record.ipc(),
                entry.record.branches,
                entry.record.memrefs,
                entry.clusters
            ));
        }
        std::fs::write(path, csv).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        if !flags.has("json") {
            println!("timeline            {path} ({} intervals)", timeline.borrow().len());
        }
    }
    if flags.has("energy") && !flags.has("json") {
        let e = estimate_energy(&s, &EnergyParams::default());
        println!(
            "energy              {:.0} (leakage {:.0} + dynamic {:.0}), {:.3}/instr",
            e.total(),
            e.active_leakage + e.idle_leakage,
            e.dynamic,
            e.per_instruction(&s)
        );
    }
    if flags.has("ledger") {
        let path = PathBuf::from(flags.get("ledger").unwrap_or(DEFAULT_LEDGER_PATH));
        let entry = LedgerEntry {
            provenance: prov.clone(),
            metrics: Json::object()
                .set("ipc", s.ipc())
                .set("cycles", s.cycles)
                .set("committed", s.committed),
        };
        append_entry(&path, &entry)
            .map_err(|e| format!("cannot append to ledger `{}`: {e}", path.display()))?;
        if !flags.has("json") {
            println!("ledger              {} (run {})", path.display(), prov.run_id);
        }
    }
    Ok(())
}

const TRACE_FLAGS: &[&str] = &[
    "workload",
    "program",
    "policy",
    "clusters",
    "instructions",
    "warmup",
    "interval",
    "decentralized",
    "grid",
    "monolithic",
    "out",
    "events",
];

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, TRACE_FLAGS)?;
    let workload = load_workload(&flags)?;
    let cfg = build_config(&flags)?;
    let policy = build_policy(&flags, &cfg)?;
    let policy_name = policy.name();
    let instructions = flags.get_u64("instructions", 500_000)?;
    let warmup = flags.get_u64("warmup", 50_000)?;
    let interval = flags.get_u64("interval", 1_000)?;
    if interval == 0 {
        return Err("--interval must be non-zero".into());
    }
    let out_path = flags.get("out").unwrap_or("trace.json");

    // Unlike `run`, the trace covers the whole execution including the
    // warm-up: a timeline with a hole at the start is more confusing
    // than one marked from cycle 0.
    let (policy, timeline) = Recording::new(BoxedPolicy(policy), interval);
    let stream =
        workloads::CapturedTrace::for_window(&workload, warmup, instructions).compile().replay();
    let mut cpu = Processor::with_observer(
        cfg,
        stream,
        Box::new(policy),
        SteeringKind::default(),
        MetricsObserver::new(interval),
    )
    .map_err(|e| e.to_string())?;
    cpu.run(warmup + instructions).map_err(|e| e.to_string())?;
    let s = *cpu.stats();

    let (dropped_reconfigs, dropped_decisions) =
        (cpu.observer().dropped_reconfigs(), cpu.observer().dropped_decisions());
    if dropped_reconfigs + dropped_decisions > 0 {
        println!(
            "warning: the metrics observer dropped {dropped_reconfigs} reconfiguration and \
             {dropped_decisions} decision records past its event cap; the trace is truncated"
        );
    }
    let trace = chrome_trace(cpu.observer());
    let events = trace.as_arr().map_or(0, <[Json]>::len);
    std::fs::write(out_path, trace.to_string_pretty())
        .map_err(|e| format!("cannot write `{out_path}`: {e}"))?;

    println!("workload            {}", workload.name());
    println!("policy              {policy_name}");
    println!("instructions        {}", s.committed);
    println!("cycles              {}", s.cycles);
    println!("IPC                 {:.3}", s.ipc());
    println!("reconfigurations    {}", s.reconfigurations);
    println!("trace               {out_path} ({events} events)");
    if let Some(events_path) = flags.get("events") {
        let jsonl = timeline_jsonl(&timeline.borrow());
        std::fs::write(events_path, jsonl)
            .map_err(|e| format!("cannot write `{events_path}`: {e}"))?;
        println!("events              {events_path} ({} intervals)", timeline.borrow().len());
    }
    Ok(())
}

const TRACE_SAVE_FLAGS: &[&str] = &["workload", "program", "instructions", "warmup", "out"];

fn cmd_trace_save(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, TRACE_SAVE_FLAGS)?;
    let workload = load_workload(&flags)?;
    let instructions = flags.get_u64("instructions", 500_000)?;
    let warmup = flags.get_u64("warmup", 50_000)?;
    let default_out = format!("{}.ctrace", workload.name());
    let out = flags.get("out").unwrap_or(&default_out);
    let trace = workloads::CapturedTrace::for_window(&workload, warmup, instructions);
    trace.save(out).map_err(|e| format!("cannot write `{out}`: {e}"))?;
    println!(
        "{out}: {} records from `{}`{}, sized for --warmup {warmup} --instructions {instructions}",
        trace.len(),
        trace.name(),
        if trace.ended_at_halt() { " (complete execution)" } else { "" },
    );
    Ok(())
}

fn cmd_trace_info(args: &[String]) -> Result<(), String> {
    let [path] = args else { return Err("usage: clustered trace info FILE.ctrace".into()) };
    let trace =
        workloads::CapturedTrace::load(path).map_err(|e| format!("{path}: {e}"))?;
    println!("workload            {}", trace.name());
    println!("records             {}", trace.len());
    println!("program text        {} instructions", trace.program().text().len());
    println!("complete execution  {}", if trace.ended_at_halt() { "yes (ended at halt)" } else { "no (window capture)" });
    println!("replay buffer       {} bytes", trace.buffer_bytes());
    let compiled = trace.compile();
    println!(
        "compiled table      {} micro-ops ({} bytes)",
        compiled.table_len(),
        compiled.table_bytes()
    );
    println!("basic blocks        {}", compiled.block_count());
    Ok(())
}

const EXPLAIN_FLAGS: &[&str] = &[
    "workload",
    "program",
    "policy",
    "clusters",
    "instructions",
    "warmup",
    "decentralized",
    "grid",
    "monolithic",
    "decisions",
    "limit",
    "decision-cap",
];

/// Per-state commit attribution: each decision's state owns the span
/// of commits since the previous decision; the tail after the last
/// decision stays with the last state.
fn commits_per_state(decisions: &[DecisionRecord], total_committed: u64) -> Vec<(PolicyState, u64)> {
    let mut spans: Vec<(PolicyState, u64)> = Vec::new();
    let mut add = |state: PolicyState, commits: u64| {
        if commits == 0 {
            return;
        }
        match spans.iter_mut().find(|(s, _)| *s == state) {
            Some((_, n)) => *n += commits,
            None => spans.push((state, commits)),
        }
    };
    let mut prev = 0u64;
    for d in decisions {
        add(d.state, d.commit.saturating_sub(prev));
        prev = prev.max(d.commit);
    }
    if let Some(last) = decisions.last() {
        add(last.state, total_committed.saturating_sub(prev.min(total_committed)));
    }
    spans.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    spans
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, EXPLAIN_FLAGS)?;
    let workload = load_workload(&flags)?;
    let cfg = build_config(&flags)?;
    let policy = build_policy(&flags, &cfg)?;
    let policy_name = policy.name();
    let instructions = flags.get_u64("instructions", 500_000)?;
    let warmup = flags.get_u64("warmup", 50_000)?;
    let limit = flags.get_u64("limit", 40)? as usize;
    let cap = flags.get_u64("decision-cap", DEFAULT_EVENT_CAP as u64)? as usize;
    if cap == 0 {
        return Err("--decision-cap must be non-zero".into());
    }

    // Like `trace`, the timeline covers the whole execution including
    // the warm-up: policy decisions start at cycle 0 and a timeline
    // with a hole at the front is more confusing than a marked one.
    let trace = workloads::capture_for_window_cached(
        &workload,
        warmup,
        instructions,
        workloads::env_cache_dir().as_deref(),
    );
    let stream = trace.compile().replay();
    let mut cpu = Processor::with_observer(
        cfg,
        stream,
        policy,
        SteeringKind::default(),
        DecisionTrace::with_cap(cap),
    )
    .map_err(|e| e.to_string())?;
    cpu.run(warmup + instructions).map_err(|e| e.to_string())?;
    let s = *cpu.stats();
    let (decisions, dropped) = cpu.observer().clone().into_decisions();
    if dropped > 0 {
        println!(
            "warning: {dropped} decision records dropped past the {cap}-record cap; \
             the timeline and summary below undercount (raise --decision-cap)"
        );
    }

    println!("workload            {}", workload.name());
    println!("policy              {policy_name}");
    println!("instructions        {} ({} warm-up included)", s.committed, warmup);
    println!("cycles              {}", s.cycles);
    println!("IPC                 {:.3}", s.ipc());
    println!();

    if decisions.is_empty() {
        println!("decision timeline: empty — no decision points inside this run");
        println!("(checkpoint policies record every 10k commits; try more --instructions)");
        println!("\nsummary: 0 decisions, {} reconfigurations", s.reconfigurations);
        return Ok(());
    }

    let shown = decisions.len().min(limit.max(1));
    println!("decision timeline ({shown} of {} decisions):", decisions.len());
    println!(
        "{:>6} {:>10} {:>11} {:>8} {:>4}  {:<12} {:>6} {:>7}  reason",
        "ivl", "commit", "cycle", "len", "clu", "state", "ipc", "instab"
    );
    for d in &decisions[..shown] {
        println!(
            "{:>6} {:>10} {:>11} {:>8} {:>4}  {:<12} {:>6.3} {:>7.1}  {}",
            d.interval,
            d.commit,
            d.cycle,
            d.interval_length,
            d.clusters,
            d.state.as_str(),
            d.ipc,
            d.instability,
            d.reason.as_str()
        );
    }
    if shown < decisions.len() {
        println!("… {} more decisions (raise --limit)", decisions.len() - shown);
    }

    println!("\nsummary:");
    println!(
        "  decisions           {}{}",
        decisions.len(),
        if dropped > 0 { format!(" (+{dropped} dropped past the cap)") } else { String::new() }
    );
    for (state, commits) in commits_per_state(&decisions, s.committed) {
        println!(
            "  {:<19} {:>5.1}% of commits",
            state.as_str(),
            100.0 * commits as f64 / s.committed.max(1) as f64
        );
    }
    println!(
        "  reconfigurations    {} ({:.2} per 10k commits)",
        s.reconfigurations,
        s.reconfigurations as f64 * 10_000.0 / s.committed.max(1) as f64
    );
    let mut lengths = std::collections::BTreeMap::new();
    for d in &decisions {
        *lengths.entry(d.interval_length).or_insert(0usize) += 1;
    }
    let hist: Vec<String> =
        lengths.iter().map(|(len, n)| format!("{len}\u{00d7}{n}")).collect();
    println!("  interval lengths    {}", hist.join("  "));
    if let Some(d) = decisions.iter().find(|d| d.reason == DecisionReason::Discontinued) {
        println!(
            "  discontinued        at interval {} (commit {}): pinned to {} clusters",
            d.interval, d.commit, d.clusters
        );
    }

    if let Some(path) = flags.get("decisions") {
        // First line is the run's provenance record (discriminated by
        // its `event` key); decision records follow, one per line.
        let prov = Provenance::new(
            trace.name(),
            Some(trace.checksum()),
            cfg.digest(),
            policy_name.as_str(),
        );
        let header = Json::object()
            .set("event", "provenance")
            .set("provenance", prov.to_json())
            .to_string_compact();
        std::fs::write(path, format!("{header}\n{}", decisions_jsonl(&decisions)))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("  trace               {path} ({} lines)", decisions.len() + 1);
    }
    Ok(())
}

/// `clustered diff A.json B.json [--threshold X] [--json]`: align two
/// exported artifacts by their provenance blocks and compare every
/// numeric counter. The command reports — it never fails on drift (the
/// verdict is in the output for callers to gate on); only unreadable
/// or malformed inputs are errors.
fn cmd_diff(args: &[String]) -> Result<(), String> {
    let mut paths: Vec<&str> = Vec::new();
    let mut threshold = DEFAULT_DIFF_THRESHOLD;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--threshold" => {
                let v = it.next().ok_or("--threshold expects a number")?;
                threshold = v
                    .parse()
                    .map_err(|_| format!("--threshold expects a number, got `{v}`"))?;
                if threshold.is_nan() || threshold < 0.0 {
                    return Err(format!("--threshold must be >= 0, got `{v}`"));
                }
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`\n{USAGE}"))
            }
            path => paths.push(path),
        }
    }
    let [a, b] = paths[..] else {
        return Err("usage: clustered diff A.json B.json [--threshold X] [--json]".into());
    };
    let read = |path: &str| -> Result<Json, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        clustered::stats::json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))
    };
    let report = diff_docs(&read(a)?, &read(b)?, threshold);
    if json {
        println!("{}", report.to_json().to_string_pretty());
    } else {
        println!("a: {a}\nb: {b}");
        print!("{}", report.render());
    }
    Ok(())
}

const REPORT_FLAGS: &[&str] = &["ledger", "json"];

/// `clustered report [--ledger FILE] [--json]`: aggregate the run
/// ledger into a per-workload × policy table of headline metrics.
fn cmd_report(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, REPORT_FLAGS)?;
    let path = PathBuf::from(flags.get("ledger").unwrap_or(DEFAULT_LEDGER_PATH));
    if !path.exists() {
        return Err(format!(
            "no ledger at `{}`; register runs with `clustered run --ledger`",
            path.display()
        ));
    }
    let (entries, skipped) =
        read_ledger(&path).map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
    let report = LedgerReport::build(&entries, skipped);
    if flags.has("json") {
        println!("{}", report.to_json().to_string_pretty());
    } else {
        println!("ledger: {} ({} runs)", path.display(), entries.len());
        if skipped > 0 {
            println!("warning: {skipped} malformed line(s) skipped");
        }
        print!("{}", report.render());
    }
    Ok(())
}

const PERF_FLAGS: &[&str] = &[
    "workload",
    "program",
    "policy",
    "clusters",
    "instructions",
    "warmup",
    "decentralized",
    "grid",
    "monolithic",
    "intra-jobs",
    "sample-interval",
    "out",
    "json",
];

fn cmd_perf(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, PERF_FLAGS)?;
    let workload = load_workload(&flags)?;
    let cfg = build_config(&flags)?;
    let policy = build_policy(&flags, &cfg)?;
    let policy_name = policy.name();
    let instructions = flags.get_u64("instructions", 500_000)?;
    let warmup = flags.get_u64("warmup", 50_000)?;
    let sample_interval = flags.get_u64("sample-interval", DEFAULT_SAMPLE_INTERVAL)?;
    if sample_interval == 0 {
        return Err("--sample-interval must be non-zero".into());
    }

    let trace = workloads::capture_for_window_cached(
        &workload,
        warmup,
        instructions,
        workloads::env_cache_dir().as_deref(),
    );
    let label = format!("{} ({policy_name})", trace.name());
    let stream = trace.compile().replay();
    let mut cpu = Processor::with_observer(
        cfg,
        stream,
        policy,
        SteeringKind::default(),
        HostProfiler::new(sample_interval),
    )
    .map_err(|e| e.to_string())?;
    cpu.run(warmup).map_err(|e| e.to_string())?;
    // Discard the warm-up from the profile so shares and throughput
    // describe the measured window only.
    cpu.observer_mut().reset();
    let before = *cpu.stats();
    let wall = std::time::Instant::now();
    cpu.run(instructions).map_err(|e| e.to_string())?;
    let wall_seconds = wall.elapsed().as_secs_f64();
    let s = cpu.stats().delta_since(&before);
    let p = cpu.observer();

    let trace_events = match flags.get("out") {
        Some(path) => {
            let doc = host_chrome_trace(p, &label);
            let events = doc.as_arr().map_or(0, <[Json]>::len);
            std::fs::write(path, doc.to_string_pretty())
                .map_err(|e| format!("cannot write `{path}`: {e}"))?;
            Some((path, events))
        }
        None => None,
    };

    if flags.has("json") {
        let prov = Provenance::new(
            trace.name(),
            Some(trace.checksum()),
            cfg.digest(),
            policy_name.as_str(),
        )
        .with_wall_seconds(wall_seconds);
        println!(
            "{}",
            envelope(&prov, host_profile_json(p, &label, wall_seconds)).to_string_pretty()
        );
        return Ok(());
    }

    println!("workload            {}", trace.name());
    println!("policy              {policy_name}");
    println!("sim cycles          {}", p.cycles());
    println!("IPC                 {:.3}", s.ipc());
    println!("wall time           {wall_seconds:.3} s");
    println!(
        "sim cycles/sec      {:.0}",
        if wall_seconds > 0.0 { p.cycles() as f64 / wall_seconds } else { 0.0 }
    );
    println!("host loop time      {:.3} s, by stage:", p.loop_nanos() as f64 / 1e9);
    for stage in HostStage::ALL {
        println!("  {:<17} {:>5.1}%", stage.as_str(), 100.0 * p.stage_share(stage));
    }
    println!("drained events      {} (max/mean shard skew {:.2})", p.drained_total(), p.drained_skew());
    if p.intra_threads() > 0 {
        println!("intra-run threads   {}", p.intra_threads());
        let fmt = |v: Vec<u64>| {
            v.iter().map(ToString::to_string).collect::<Vec<_>>().join(" ")
        };
        println!("  drained/thread    {}", fmt(p.drained_per_thread()));
        println!("  busy cyc/thread   {}", fmt(p.busy_cycles_per_thread()));
    }
    println!("fully quiescent     {} of {} cycles", p.fully_quiescent_cycles(), p.cycles());
    println!("profile slices      {} ({} dropped)", p.slices().len(), p.dropped_slices());
    if let Some((path, events)) = trace_events {
        println!("trace               {path} ({events} events)");
    }
    Ok(())
}

fn cmd_asm(args: &[String]) -> Result<(), String> {
    let [path] = args else { return Err("usage: clustered asm FILE.s".into()) };
    let source =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let program = isa::assemble(&source).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{}: {} instructions, {} data bytes, entry at {}",
        path,
        program.text().len(),
        program.data().len(),
        program.entry()
    );
    // Quick functional smoke test so users catch runaway programs.
    let mut machine = emu::Machine::new(program.clone());
    machine.run_to_halt(1_000_000).map_err(|e| format!("execution fault: {e}"))?;
    if machine.is_halted() {
        println!("halts after {} instructions", machine.instructions_executed());
    } else {
        println!("still running after 1M instructions (endless kernel?)");
    }
    print!("{program}");
    Ok(())
}

fn cmd_workloads() -> Result<(), String> {
    println!("{:<8} {:<12} {:<7} description", "name", "suite", "IPC*");
    for w in workloads::all() {
        let p = w.paper();
        println!(
            "{:<8} {:<12} {:<7.2} {}",
            w.name(),
            p.class.suite_name(),
            p.base_ipc,
            w.description()
        );
    }
    println!("\n* IPC as reported by the paper's Table 3 for the original benchmark.");
    Ok(())
}

fn cmd_phases(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["workload", "program", "instructions", "warmup", "base-interval"])?;
    let workload = load_workload(&flags)?;
    let instructions = flags.get_u64("instructions", 500_000)?;
    let warmup = flags.get_u64("warmup", 50_000)?;
    let base = flags.get_u64("base-interval", 1_000)?;
    let (recorder, records) = MetricsRecorder::new(16, base);
    let stream = workload.trace().map(|r| r.expect("workload trace"));
    let mut cpu = Processor::new(SimConfig::default(), stream, Box::new(recorder))
        .map_err(|e| e.to_string())?;
    cpu.run(warmup + instructions).map_err(|e| e.to_string())?;
    let records = records.borrow();
    // Discard the warm-up portion, as the Table 4 experiment does.
    let skip = ((warmup / base) as usize).min(records.len());
    let records = &records[skip..];
    println!(
        "workload {}: {} base intervals of {base} instructions ({skip} warm-up intervals discarded)",
        workload.name(),
        records.len()
    );
    let thresholds = StabilityThresholds::default();
    let mut group = 1;
    while records.len() / group >= 4 {
        if let Some(f) = instability_factor(records, group, &thresholds) {
            println!("interval {:>9}: {f:>5.1}% unstable", base * group as u64);
        }
        group *= 2;
    }
    Ok(())
}
