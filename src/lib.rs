//! `clustered` — a dynamically tunable clustered-processor simulator.
//!
//! A from-scratch Rust reproduction of Balasubramonian, Dwarkadas &
//! Albonesi, *"Dynamically Managing the Communication-Parallelism
//! Trade-off in Future Clustered Processors"* (ISCA 2003). This facade
//! crate re-exports the whole stack:
//!
//! * [`isa`] — the virtual RISC ISA and assembler,
//! * [`emu`] — the functional emulator / dynamic-trace generator,
//! * [`workloads`] — nine benchmark-analogue kernels (Table 3),
//! * [`sim`] — the cycle-level clustered processor,
//! * [`policies`] — the paper's dynamic cluster-allocation algorithms,
//! * [`stats`] — reporting helpers used by the experiment harness.
//!
//! # Quick start
//!
//! ```
//! use clustered::policies::IntervalExplore;
//! use clustered::sim::{Processor, SimConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = clustered::workloads::by_name("gzip").expect("known workload");
//! let stream = workload.trace().map(Result::unwrap);
//! let mut cpu = Processor::new(
//!     SimConfig::default(),
//!     stream,
//!     Box::new(IntervalExplore::default()),
//! )?;
//! let stats = cpu.run(50_000)?;
//! println!("IPC {:.2} with {} clusters", stats.ipc(), cpu.active_clusters());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use clustered_core as policies;
pub use clustered_emu as emu;
pub use clustered_isa as isa;
pub use clustered_sim as sim;
pub use clustered_stats as stats;
pub use clustered_workloads as workloads;
